//! The Perpetual replica: a co-located voter + driver pair on one node
//! (paper §2.1.1, Fig. 1).
//!
//! Each replica hosts:
//!
//! * a **voter** — a CLBFT instance ordering this group's [`Event`] stream,
//!   plus the candidate/validation bookkeeping that decides *which* events
//!   may enter agreement (the `f_c + 1` matching-request rule, bundle
//!   validation, local abort timers);
//! * a **driver** — the deterministic [`Executor`] plus the outcall table,
//!   reply routing, and responder duty.
//!
//! ## Local-validation gate
//!
//! A backup voter refuses to *prepare* an ordering proposal for an external
//! request or an outcall result until it has locally validated the same
//! event (received `f_c + 1` matching `OutRequest`s, or a reply bundle with
//! `f_t + 1` valid shares). Proposals arriving before local validation are
//! parked in a gate buffer and released when validation catches up. This is
//! what stops a faulty primary from injecting forged cross-group events and
//! is the mechanism behind the paper's fault-isolation guarantee.

use crate::cost::CostModel;
use crate::event::Event;
use crate::executor::{AppCmd, AppEvent, AppObs, AppOutput, CallId, Executor, RequestHandle};
use crate::faults::FaultMode;
use crate::group::{GroupId, Topology};
use crate::messages::{decode_pmsg, encode_pmsg, reply_digest, request_tag, PMsg};
use bytes::Bytes;
use pws_clbft::{
    wire as bft_wire, Action, Config, ExecutedSet, Msg, ObsEvent, Replica as BftReplica, ReplicaId,
    RequestId as BftRequestId, Seq, TimerCmd,
};
use pws_crypto::auth::{verify_bundle, BundleShare};
use pws_crypto::keys::KeyTable;
use pws_crypto::sha256::Digest32;
use pws_simnet::metrics::BatchKeys;
use pws_simnet::{
    AuditEvent, Context, FlightKind, Node, NodeId, Phase, ProtoKey, SimDuration, TimerId,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Default for [`ReplicaConfig::reply_retention`]: how many produced
/// replies (and reply routes) are retained per calling group for
/// responder-rotation retransmits. Callers only ever retry calls they
/// still have outstanding, so pruning the oldest entries keeps the
/// checkpointable driver state from growing with request history while
/// preserving every retransmit any live caller can ask for.
///
/// **Contract:** a caller must keep far fewer than this many calls
/// outstanding against one target group (every client and caller in this
/// workspace uses windows ≤ 16), and its retry cadence must revisit a
/// stuck call well before the group completes this many *newer* requests
/// for it — eviction of a still-wanted reply wedges that call for good.
/// The default gives a churn-degraded group several client retry cycles
/// of slack. This mirrors Castro–Liskov, where the reply cache holds
/// exactly *one* reply per client (their clients are
/// single-outstanding); the window here is 512× more generous.
pub const DEFAULT_REPLY_RETENTION: usize = 512;

/// The dedup key for a delivered external request: the calling group is
/// the origin, the caller's dense *per-target* sequence number the
/// counter — exactly the shape [`ExecutedSet`] compacts to a contiguous
/// prefix per caller, even when the caller scatters its global `req_no`
/// stream across shards.
fn delivered_key(caller: GroupId, target_seq: u64) -> BftRequestId {
    BftRequestId::new(caller.0 as u64, target_seq)
}

/// Inserts into a per-caller retention-bounded map, evicting the
/// lowest-numbered entries past `retention` — but never the entry just
/// inserted. A straggler request can be ordered long after its numeric
/// peers (dropped by a view change mid-churn and re-proposed), making the
/// *newest* insertion the *lowest* key in the map; evicting it on sight
/// would discard its reply or route before they were ever used.
fn insert_bounded<T>(per: &mut BTreeMap<u64, T>, req_no: u64, value: T, retention: usize) {
    per.insert(req_no, value);
    while per.len() > retention.max(1) {
        let lowest = *per.keys().next().expect("nonempty past retention");
        let victim = if lowest == req_no {
            match per.keys().nth(1) {
                Some(k) => *k,
                None => break,
            }
        } else {
            lowest
        };
        per.remove(&victim);
    }
}

/// Static configuration of one Perpetual replica.
pub struct ReplicaConfig {
    /// This replica's group.
    pub group: GroupId,
    /// This replica's index within the group.
    pub index: u32,
    /// The deployment topology.
    pub topology: Arc<Topology>,
    /// Deployment-wide master seed (keys, deterministic app seeds).
    pub master_seed: u64,
    /// CPU cost model.
    pub cost: CostModel,
    /// CLBFT view-change timeout.
    pub view_timeout: SimDuration,
    /// Interval after which an unanswered outcall is retransmitted with the
    /// responder role rotated to the next target replica (masks a faulty
    /// responder; part of Perpetual's fault handling).
    pub retry_interval: SimDuration,
    /// Milliseconds added to the simulated clock for time votes, so agreed
    /// timestamps look like wall-clock epochs.
    pub epoch_offset_ms: u64,
    /// Maximum requests the voter's primary seals into one agreement batch
    /// (CLBFT request batching; `1` disables it).
    pub max_batch_size: usize,
    /// Upper bound on how long a queued request may wait for its batch to
    /// seal when the agreement pipeline is full.
    pub batch_delay: SimDuration,
    /// The voter checkpoints (snapshot + certificate vote) every this many
    /// executions.
    pub checkpoint_interval: u64,
    /// The voter's log window (high watermark = stable + window).
    pub watermark_window: u64,
    /// Snapshot page size (bytes) for the voter's Merkle-partitioned
    /// checkpoints and state transfer. Must match across the group.
    pub page_size: u32,
    /// Proactive-recovery window: when set, this replica tears its state
    /// down and rejoins via state transfer every `n × window`, staggered by
    /// replica index so exactly one replica per group recovers per window.
    /// `None` disables proactive recovery. Ignored for singleton groups
    /// (`n = 1`): with no peers to fetch state from, a wipe would be an
    /// irrecoverable crash.
    pub recovery_interval: Option<SimDuration>,
    /// Produced replies and reply routes retained per calling group for
    /// retransmits (see [`DEFAULT_REPLY_RETENTION`] for the caller-side
    /// contract).
    pub reply_retention: usize,
    /// Speculative execution: the voter emits
    /// [`Action::SpeculativeExecute`] at pre-prepare time and the driver
    /// executes against a rollback-able copy of state, overlapping
    /// application work with the prepare/commit rounds.
    pub speculative: bool,
    /// Override for the read-only reply quorum. `None` uses the safe
    /// default `2f_t + 1` (capped at `n_t`); experiments may lower it to
    /// probe the latency/consistency trade-off.
    pub read_only_quorum: Option<usize>,
    /// Collect per-request lifecycle phase events from the voter (see
    /// [`pws_clbft::Config::obs_phases`]). Set by the harness when tracing
    /// is enabled; off by default. Purely observational.
    pub obs_phases: bool,
    /// Collect protocol audit observations from the voter and driver (see
    /// [`pws_clbft::Config::audit`]) for the online invariant auditor. Set
    /// by the harness when auditing is enabled; off by default. Purely
    /// observational.
    pub audit: bool,
    /// Fault injection mode.
    pub fault: FaultMode,
}

impl ReplicaConfig {
    /// A correct replica with default cost model and timeouts.
    pub fn new(group: GroupId, index: u32, topology: Arc<Topology>, master_seed: u64) -> Self {
        ReplicaConfig {
            group,
            index,
            topology,
            master_seed,
            cost: CostModel::DEFAULT,
            view_timeout: SimDuration::from_millis(400),
            retry_interval: SimDuration::from_millis(700),
            epoch_offset_ms: 1_190_000_000_000,
            max_batch_size: 16,
            batch_delay: SimDuration::from_millis(1),
            checkpoint_interval: 64,
            watermark_window: 256,
            page_size: pws_clbft::DEFAULT_PAGE_SIZE,
            recovery_interval: None,
            reply_retention: DEFAULT_REPLY_RETENTION,
            speculative: false,
            read_only_quorum: None,
            obs_phases: false,
            audit: false,
            fault: FaultMode::Correct,
        }
    }

    /// The CLBFT configuration this replica's voter runs with.
    fn bft_config(&self, n: u32) -> Config {
        let mut bft_cfg = Config::new(n);
        bft_cfg.max_batch_size = self.max_batch_size.max(1);
        bft_cfg.batch_delay_us = self.batch_delay.as_micros();
        bft_cfg.checkpoint_interval = self.checkpoint_interval.max(1);
        bft_cfg.watermark_window = self.watermark_window.max(1);
        bft_cfg.page_size = self.page_size.max(1);
        bft_cfg.speculative = self.speculative;
        bft_cfg.obs_phases = self.obs_phases;
        bft_cfg.audit = self.audit;
        bft_cfg
    }
}

impl std::fmt::Debug for ReplicaConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaConfig")
            .field("group", &self.group)
            .field("index", &self.index)
            .field("fault", &self.fault)
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct CallState {
    target: GroupId,
    /// Dense per-target dedup sequence (see `Event::External::target_seq`).
    /// Read-only calls never consume one and store `0`.
    target_seq: u64,
    done: bool,
    /// Travels the read-only fast path: no `target_seq`, retransmits
    /// re-broadcast the read.
    read_only: bool,
    /// Original request payload, kept for retransmission.
    payload: Bytes,
}

#[derive(Debug, Default, Clone)]
struct ResponderEntry {
    /// payload + shares per digest (dedup by share origin).
    by_digest: HashMap<Digest32, (Bytes, Vec<BundleShare>)>,
    sent: bool,
}

/// Collects fast-path read replies for one outstanding read-only call.
/// One counted vote per target replica — a Byzantine replica flooding
/// conflicting replies burns its single vote and can neither reach quorum
/// alone nor grow this collector beyond `n_t` entries.
#[derive(Debug, Default)]
struct RoCollector {
    voted: HashSet<u32>,
    by_digest: HashMap<Digest32, (Bytes, Vec<BundleShare>)>,
}

/// Side effects buffered while executing a batch speculatively: everything
/// irreversible (network sends, timer arming, voter interactions) waits in
/// here until commit finalizes the slot; a rollback just drops the buffers.
#[derive(Debug, Default)]
struct SpecBuffers {
    /// Outbound non-voter messages `(node, encoded frame, extra MACs)`;
    /// send cost is charged when the flush actually transmits.
    sends: Vec<(NodeId, Bytes, usize)>,
    /// Deferred driver operations, replayed in order at finalize.
    deferred: Vec<DeferredOp>,
    /// Application-layer observability emissions (txn/reshard spans, audit
    /// observations, gauges). Stamped at finalize so a rolled-back
    /// speculation leaves no phantom spans or audit sightings.
    obs: Vec<AppObs>,
}

#[derive(Debug)]
enum DeferredOp {
    /// Arm the abort/retry timers for a call issued during speculation.
    ArmCallTimers {
        call_no: u64,
        timeout: Option<SimDuration>,
    },
    /// Complete a call resolution: cancel timers, withdraw obsolete
    /// proposals from the voter, re-drain the gate. The reversible half
    /// (the `done` flag) was already set speculatively.
    Resolve { call_no: u64 },
    /// Submit the time vote for a query issued during speculation (the
    /// clock is read at finalize, when the vote actually enters agreement).
    SubmitTime { token: u64 },
}

/// One speculatively executed slot awaiting commit.
#[derive(Debug)]
struct SpecEntry {
    seq: Seq,
    /// Request ids the speculation covered, to match against the eventual
    /// [`Action::Execute`].
    ids: Vec<BftRequestId>,
    /// Full driver+executor snapshot taken before executing, restored on
    /// rollback.
    pre_state: Bytes,
    /// Responder bookkeeping is not snapshot-covered (it is transient
    /// pre-agreement state), so it is saved aside explicitly.
    responder_saved: HashMap<(GroupId, u64), ResponderEntry>,
    bufs: SpecBuffers,
}

/// The group-agreed seed delivered in [`AppEvent::Init`].
pub fn group_seed(master_seed: u64, group: GroupId) -> u64 {
    let mut z = master_seed ^ ((group.0 as u64) << 32 | 0x5eed);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Perpetual replica node (voter + driver). Implements [`Node`].
pub struct PerpetualReplica {
    cfg: ReplicaConfig,
    n: u32,
    f: u32,
    bft: BftReplica,
    keys: KeyTable,
    // ----- voter state -----
    /// External-request candidates: (caller, req_no) → digest → driver idxs.
    candidates: HashMap<(GroupId, u64), HashMap<Digest32, HashSet<u32>>>,
    /// CLBFT request digests the gate lets through.
    validated: HashSet<Digest32>,
    /// (call, reply digest) pairs validated by the co-located driver.
    validated_results: HashSet<(u64, Digest32)>,
    /// Ordering proposals parked until local validation.
    gated: Vec<(ReplicaId, Msg)>,
    /// Calls whose local abort timer fired.
    abort_fired: HashSet<u64>,
    // ----- driver state -----
    executor: Box<dyn Executor>,
    next_call: u64,
    next_token: u64,
    /// Dense per-target sequence counters: the dedup key space of our own
    /// outcalls (see `Event::External::target_seq`).
    next_target_seq: BTreeMap<u32, u64>,
    calls: HashMap<u64, CallState>,
    /// Delivered external requests, compacted per calling group (the
    /// driver-level dedup mirror of the voter's [`ExecutedSet`]).
    delivered_external: ExecutedSet,
    /// Reply routes (chosen responder per delivered request), bounded per
    /// caller like [`PerpetualReplica::replies_sent`] — retransmits
    /// re-derive the route from the incoming request anyway, so old
    /// entries carry no information a live caller still needs.
    reply_info: HashMap<GroupId, BTreeMap<u64, u32>>,
    /// Replies already produced, kept (bounded per caller by
    /// [`ReplicaConfig::reply_retention`]) for responder-rotation
    /// retransmits.
    replies_sent: HashMap<GroupId, BTreeMap<u64, Bytes>>,
    /// Result proposals submitted into agreement, per call, so obsolete ones
    /// can be withdrawn when the call resolves.
    submitted_results: HashMap<u64, Vec<pws_clbft::RequestId>>,
    resolved_tokens: HashSet<u64>,
    /// Fast-path read replies per outstanding read-only call. Transient:
    /// not snapshot-covered (a recovering replica simply re-collects from
    /// retransmits).
    ro_replies: HashMap<u64, RoCollector>,
    // ----- speculation -----
    /// Speculatively executed slots, oldest first, awaiting commit.
    spec_queue: VecDeque<SpecEntry>,
    /// `Some` while a batch is executing speculatively: side effects are
    /// routed into these buffers instead of happening.
    spec_building: Option<SpecBuffers>,
    // ----- responder duty -----
    responder_state: HashMap<(GroupId, u64), ResponderEntry>,
    // ----- timers -----
    view_timer: Option<TimerId>,
    batch_timer: Option<TimerId>,
    call_timers: HashMap<TimerId, u64>,
    timers_by_call: HashMap<u64, TimerId>,
    retry_timers: HashMap<TimerId, u64>,
    retry_by_call: HashMap<u64, TimerId>,
    retries: HashMap<u64, u32>,
    /// Fires once for [`FaultMode::StaleDrop`].
    stale_timer: Option<TimerId>,
    /// Fires every `n × recovery_interval` for proactive recovery.
    recovery_timer: Option<TimerId>,
    /// Precomputed `clbft.exec.*` metric keys (the per-batch path is hot;
    /// no per-batch formatting).
    exec_keys: BatchKeys,
    /// Precomputed per-group `clbft.exec.<group>.*` metric keys.
    exec_group_keys: BatchKeys,
    /// Span routes for deferred replies: `(caller, req_no)` → the span key
    /// `(origin, counter)` of the delivered external request. Populated at
    /// delivery only while tracing is on, consumed (removed) when the
    /// reply is produced, and bounded per caller like the reply cache.
    traced_replies: HashMap<GroupId, BTreeMap<u64, (u64, u64)>>,
}

impl std::fmt::Debug for PerpetualReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerpetualReplica")
            .field("group", &self.cfg.group)
            .field("index", &self.cfg.index)
            .field("pending_calls", &self.calls.len())
            .finish_non_exhaustive()
    }
}

impl PerpetualReplica {
    /// Creates a replica hosting `executor`.
    pub fn new(cfg: ReplicaConfig, executor: Box<dyn Executor>) -> Self {
        let n = cfg.topology.n(cfg.group);
        let f = cfg.topology.f(cfg.group);
        assert!(cfg.index < n, "replica index out of range");
        let bft = BftReplica::new(ReplicaId(cfg.index), cfg.bft_config(n));
        let keys = KeyTable::new(cfg.master_seed);
        PerpetualReplica {
            n,
            f,
            bft,
            keys,
            candidates: HashMap::new(),
            validated: HashSet::new(),
            validated_results: HashSet::new(),
            gated: Vec::new(),
            abort_fired: HashSet::new(),
            executor,
            next_call: 0,
            next_target_seq: BTreeMap::new(),
            next_token: 0,
            calls: HashMap::new(),
            delivered_external: ExecutedSet::new(),
            reply_info: HashMap::new(),
            replies_sent: HashMap::new(),
            submitted_results: HashMap::new(),
            resolved_tokens: HashSet::new(),
            ro_replies: HashMap::new(),
            spec_queue: VecDeque::new(),
            spec_building: None,
            responder_state: HashMap::new(),
            view_timer: None,
            batch_timer: None,
            call_timers: HashMap::new(),
            timers_by_call: HashMap::new(),
            retry_timers: HashMap::new(),
            retry_by_call: HashMap::new(),
            retries: HashMap::new(),
            stale_timer: None,
            recovery_timer: None,
            exec_keys: BatchKeys::new("clbft.exec"),
            exec_group_keys: BatchKeys::new(&format!("clbft.exec.{}", cfg.group)),
            traced_replies: HashMap::new(),
            cfg,
        }
    }

    /// Typed access to the hosted executor (for harvesting results after a
    /// run).
    pub fn executor_mut<T: Executor>(&mut self) -> Option<&mut T> {
        let any: &mut dyn std::any::Any = self.executor.as_mut();
        any.downcast_mut::<T>()
    }

    /// This replica's group.
    pub fn group(&self) -> GroupId {
        self.cfg.group
    }

    /// This replica's index.
    pub fn index(&self) -> u32 {
        self.cfg.index
    }

    /// The CLBFT view the voter is currently in (for tests).
    pub fn bft_view(&self) -> pws_clbft::View {
        self.bft.view()
    }

    /// The voter's last executed sequence number (for tests/assertions).
    pub fn bft_last_executed(&self) -> pws_clbft::Seq {
        self.bft.last_executed()
    }

    /// The voter's chained execution digest — byte-identical across
    /// replicas that executed the same history (for digest-checked
    /// recovery assertions).
    pub fn bft_execution_chain(&self) -> Digest32 {
        self.bft.execution_chain()
    }

    /// The voter's last stable checkpoint and its digest.
    pub fn bft_stable_checkpoint(&self) -> (pws_clbft::Seq, Digest32) {
        (self.bft.stable_seq(), self.bft.stable_digest())
    }

    /// The voter's dedup-set footprint: `(request ids covered, wire
    /// entries)`. The compaction evidence for tests: ids grow with request
    /// history while entries stay `O(origins + reorder residue)`.
    pub fn bft_dedup_footprint(&self) -> (u64, usize) {
        let set = self.bft.executed_set();
        (set.id_count(), set.wire_entries())
    }

    /// The hosted executor's application snapshot (for digest-checked
    /// recovery assertions).
    pub fn service_snapshot(&self) -> Vec<u8> {
        self.executor.snapshot()
    }

    /// Diagnostic snapshot: (view, last_exec, bft outstanding, gated
    /// proposals, validated digests, delivered externals). For tests.
    pub fn debug_state(&self) -> (u64, u64, usize, usize, usize, usize) {
        (
            self.bft.view().0,
            self.bft.last_executed().0,
            self.bft.outstanding(),
            self.gated.len(),
            self.validated.len(),
            self.delivered_external.id_count() as usize,
        )
    }

    fn my_node(&self) -> NodeId {
        self.cfg.topology.node(self.cfg.group, self.cfg.index)
    }

    /// Records the responder choice for a delivered request, bounded per
    /// caller like the reply cache — retransmits re-derive the route from
    /// the incoming request, so only the newest window matters.
    fn record_reply_route(&mut self, caller: GroupId, req_no: u64, responder: u32) {
        insert_bounded(
            self.reply_info.entry(caller).or_default(),
            req_no,
            responder,
            self.cfg.reply_retention,
        );
    }

    fn send_pmsg(&mut self, to: NodeId, msg: &PMsg, extra_macs: usize, ctx: &mut Context<'_>) {
        if self.cfg.fault.is_silent() {
            return;
        }
        let bytes = encode_pmsg(msg);
        if let Some(bufs) = self.spec_building.as_mut() {
            // Speculating: nothing leaves the node until the slot commits.
            bufs.sends.push((to, bytes, extra_macs));
            return;
        }
        ctx.spend(self.cfg.cost.send_cost(bytes.len(), extra_macs));
        ctx.metrics().incr("perpetual.messages_sent");
        ctx.send(to, bytes);
    }

    fn send_bft(&mut self, to: ReplicaId, msg: &Msg, ctx: &mut Context<'_>) {
        let inner = bft_wire::encode_msg(msg);
        let node = self.cfg.topology.node(self.cfg.group, to.0);
        self.send_pmsg(node, &PMsg::Bft(inner), 0, ctx);
    }

    fn broadcast_bft(&mut self, msg: &Msg, ctx: &mut Context<'_>) {
        for i in 0..self.n {
            if i != self.cfg.index {
                self.send_bft(ReplicaId(i), msg, ctx);
            }
        }
    }

    /// [`FaultMode::EquivocatingPrimary`]: deliver the honest pre-prepare
    /// to every backup but one, and a conflicting variant — same
    /// `(view, seq)`, different batch, consistently recomputed digest — to
    /// the victim. The variant corrupts one request payload, which the
    /// victim's local-validation gate admits as a malformed event (executed
    /// as a deterministic skip), so the conflicting proposal genuinely
    /// enters agreement bookkeeping there. Returns `false` (fall back to an
    /// honest broadcast) when the batch is empty or the group too small to
    /// have a victim and a majority.
    fn broadcast_equivocating(
        &mut self,
        pp: &pws_clbft::PrePrepareMsg,
        ctx: &mut Context<'_>,
    ) -> bool {
        if pp.batch.requests.is_empty() || self.n < 3 {
            return false;
        }
        let victim = (self.cfg.index + 1) % self.n;
        let mut twisted = pp.batch.clone();
        let mut bad = twisted.requests[0].payload.to_vec();
        match bad.first_mut() {
            Some(b) => *b ^= 0xA5,
            None => bad.push(0xA5),
        }
        twisted.requests[0].payload = Bytes::from(bad);
        let variant = Msg::PrePrepare(pws_clbft::PrePrepareMsg {
            view: pp.view,
            seq: pp.seq,
            digest: twisted.digest(),
            batch: twisted,
        });
        let honest = Msg::PrePrepare(pp.clone());
        ctx.metrics().incr("perpetual.fault.equivocations");
        for i in 0..self.n {
            if i == self.cfg.index {
                continue;
            }
            let msg = if i == victim { &variant } else { &honest };
            self.send_bft(ReplicaId(i), msg, ctx);
        }
        true
    }

    fn process_actions(&mut self, actions: Vec<Action>, ctx: &mut Context<'_>) {
        // Drain voter-side phase events *before* acting on the actions:
        // agreement phases (e.g. `committed`) must be stamped no later than
        // the execution/reply phases the actions below will record, and
        // `ctx.now()` advances with `spend` during action handling.
        self.drain_obs_events(ctx);
        for a in actions {
            match a {
                Action::Send(to, mut msg) => {
                    if matches!(msg, Msg::StateResponse(_)) {
                        ctx.metrics().incr("clbft.recovery.responses_sent");
                    }
                    if let Msg::PageResponse(pr) = &mut msg {
                        ctx.metrics()
                            .add("clbft.recovery.pages_sent", pr.pages.len() as u64);
                        if self.cfg.fault == FaultMode::CorruptPages {
                            // A compromised responder flips a byte in every
                            // page it serves; the fetcher's Merkle check
                            // must catch each one.
                            for page in &mut pr.pages {
                                let mut bad = page.to_vec();
                                match bad.first_mut() {
                                    Some(b) => *b ^= 0xA5,
                                    None => bad.push(0xA5),
                                }
                                *page = bytes::Bytes::from(bad);
                            }
                        }
                    }
                    self.send_bft(to, &msg, ctx);
                }
                Action::Broadcast(msg) => {
                    if matches!(msg, Msg::FetchState(_)) {
                        ctx.metrics().incr("clbft.recovery.fetches_sent");
                    }
                    if self.cfg.fault == FaultMode::EquivocatingPrimary {
                        if let Msg::PrePrepare(pp) = &msg {
                            if self.broadcast_equivocating(pp, ctx) {
                                continue;
                            }
                        }
                    }
                    self.broadcast_bft(&msg, ctx);
                }
                Action::Execute { seq, batch } => self.handle_execute(seq, batch, ctx),
                Action::TakeCheckpoint(seq) => self.take_checkpoint(seq, ctx),
                Action::InstallState { snapshot, .. } => {
                    // The transferred state supersedes anything speculated
                    // locally; drop the buffers (the install overwrites the
                    // state they would have rolled back).
                    self.discard_speculation(ctx);
                    ctx.metrics().incr("clbft.recovery.installs");
                    ctx.spend(self.cfg.cost.snapshot_cost(snapshot.len()));
                    self.restore_snapshot(&snapshot, ctx);
                }
                Action::ReadOnly(_) => {
                    // Reads are served inline by `handle_read_request`; an
                    // action surfacing here has no reply address, so drop.
                }
                Action::SpeculativeExecute { seq, batch } => {
                    self.speculative_execute(seq, batch, ctx);
                }
                Action::RollbackSpeculation { .. } => self.rollback_speculation(ctx),
                Action::Stable(_) => {
                    ctx.metrics().incr("perpetual.checkpoints_stable");
                    ctx.metrics().incr("clbft.ckpt.stable");
                }
                Action::EnteredView(_) => ctx.metrics().incr("perpetual.view_changes"),
                Action::ViewTimer(TimerCmd::Restart) => {
                    if let Some(t) = self.view_timer.take() {
                        ctx.cancel_timer(t);
                    }
                    self.view_timer = Some(ctx.set_timer(self.cfg.view_timeout));
                }
                Action::ViewTimer(TimerCmd::Stop) => {
                    if let Some(t) = self.view_timer.take() {
                        ctx.cancel_timer(t);
                    }
                }
                Action::BatchTimer(TimerCmd::Restart) => {
                    if let Some(t) = self.batch_timer.take() {
                        ctx.cancel_timer(t);
                    }
                    // Single source of truth: the delay the voter was
                    // configured with (ReplicaConfig::batch_delay, written
                    // into the CLBFT config at construction).
                    let delay = SimDuration::from_micros(self.bft.config().batch_delay_us);
                    self.batch_timer = Some(ctx.set_timer(delay));
                }
                Action::BatchTimer(TimerCmd::Stop) => {
                    if let Some(t) = self.batch_timer.take() {
                        ctx.cancel_timer(t);
                    }
                }
            }
        }
        self.drain_page_metrics(ctx);
        self.drain_obs_events(ctx);
    }

    /// Drains the voter's buffered observability events, stamping each with
    /// the current sim-time (the sans-io voter owns no clock). Only
    /// client-visible request families open lifecycle spans — internal
    /// agreement records (results, aborts, time votes) are filtered here by
    /// origin, so every span the recorder opens can actually close.
    fn drain_obs_events(&mut self, ctx: &mut Context<'_>) {
        for ev in self.bft.take_obs_events() {
            match ev {
                ObsEvent::Phase { id, phase } => {
                    if crate::event::is_traced_origin(id.origin) {
                        ctx.obs_phase(self.cfg.group.0, id.origin, id.counter, phase);
                    }
                }
                ObsEvent::Flight { kind, a, b } => ctx.obs_flight(kind, a, b),
                ObsEvent::Proto {
                    family,
                    id,
                    phase,
                    count,
                } => {
                    let key = ProtoKey {
                        group: self.cfg.group.0,
                        family,
                        id,
                    };
                    ctx.obs_proto(key, phase, count);
                }
                ObsEvent::Audit(ev) => ctx.obs_audit(self.cfg.group.0, ev),
            }
        }
    }

    /// Drains the voter's page counters into the `clbft.pages.*` metrics
    /// and charges the CPU cost of the hashing work they represent: each
    /// page hashed at a boundary and each transferred page verified against
    /// the certified manifest costs one `page_hash`.
    fn drain_page_metrics(&mut self, ctx: &mut Context<'_>) {
        let c = self.bft.take_page_counters();
        if c == pws_clbft::PageCounters::default() {
            return;
        }
        let m = ctx.metrics();
        m.add("clbft.pages.hashed", c.hashed);
        m.add("clbft.pages.dirty", c.dirty);
        m.add("clbft.pages.fetched", c.fetched);
        m.add("clbft.pages.verified", c.verified);
        m.add("clbft.pages.rejected", c.rejected);
        ctx.spend(self.cfg.cost.page_cost(c.hashed + c.verified));
    }

    /// Delivers one ordered batch to the driver: the per-slot agreement
    /// bookkeeping (authenticator work, ordering-table updates) is charged
    /// once for the whole batch, so multi-outcall services amortize it
    /// across every request the slot carries. Occupancy is recorded both
    /// globally and per group (`clbft.exec.<group>.*`), so topology sweeps
    /// can spot straggler groups instead of averaging them away.
    fn handle_ordered_batch(&mut self, batch: Vec<pws_clbft::Request>, ctx: &mut Context<'_>) {
        self.sample_gauges(batch.len(), ctx);
        ctx.metrics()
            .record_batch_with(&self.exec_keys, batch.len());
        ctx.metrics()
            .record_batch_with(&self.exec_group_keys, batch.len());
        ctx.spend(self.cfg.cost.batch_cost(batch.len()));
        for request in batch {
            self.handle_ordered(request.payload, ctx);
        }
    }

    /// Samples the protocol-plane time-series gauges at a batch-execution
    /// boundary — a deterministic, agreement-ordered point, so repeated
    /// runs sample at identical virtual times. Primary-only: queue depth
    /// and pipeline occupancy are primary-side quantities; sampling idle
    /// backups would drown the series in structural zeros. Purely
    /// observational and gated on tracing, like the span machinery.
    fn sample_gauges(&mut self, batch_len: usize, ctx: &mut Context<'_>) {
        if !ctx.trace_level().spans_enabled() || !self.bft.is_primary() {
            return;
        }
        let g = self.cfg.group.0;
        let queued = self.bft.queued() as f64;
        let in_flight = self.bft.in_flight() as f64;
        ctx.gauge(&format!("ts.queue_depth.{g}"), queued);
        ctx.gauge(&format!("ts.inflight.{g}"), in_flight);
        ctx.gauge(&format!("ts.batch_occupancy.{g}"), batch_len as f64);
    }

    // ----------------------------------------------------------- speculation

    /// A slot committed. If its batch is exactly the oldest outstanding
    /// speculation, the work is already done — release the buffered side
    /// effects instead of re-executing. Any mismatch (a slot that was never
    /// speculated, or state transfer racing past the queue) voids the whole
    /// speculative suffix first, then executes the committed batch for real.
    fn handle_execute(&mut self, seq: Seq, batch: Vec<pws_clbft::Request>, ctx: &mut Context<'_>) {
        let matches = self.spec_queue.front().is_some_and(|e| {
            e.seq == seq
                && e.ids.len() == batch.len()
                && e.ids.iter().zip(&batch).all(|(id, r)| *id == r.id)
        });
        if matches {
            self.finalize_speculation(batch.len(), ctx);
            return;
        }
        if !self.spec_queue.is_empty() {
            self.rollback_speculation(ctx);
        }
        self.handle_ordered_batch(batch, ctx);
    }

    /// Executes a pre-prepared batch against the live executor while every
    /// irreversible side effect (sends, timers, voter interactions) is
    /// parked in [`SpecBuffers`]. The driver+executor snapshot taken first
    /// makes the whole thing undoable; commit later flushes the buffers via
    /// [`Self::finalize_speculation`] without re-executing.
    fn speculative_execute(
        &mut self,
        seq: Seq,
        batch: Vec<pws_clbft::Request>,
        ctx: &mut Context<'_>,
    ) {
        let pre_state = self.build_snapshot();
        let responder_saved = self.responder_state.clone();
        let ids: Vec<BftRequestId> = batch.iter().map(|r| r.id).collect();
        // The execution work is real and happens now — that is the point of
        // speculating — so its CPU cost is charged now, not at finalize.
        ctx.spend(self.cfg.cost.batch_cost(batch.len()));
        self.spec_building = Some(SpecBuffers::default());
        for request in batch {
            self.handle_ordered(request.payload, ctx);
        }
        let bufs = self.spec_building.take().expect("speculation mode held");
        for id in &ids {
            if crate::event::is_traced_origin(id.origin) {
                ctx.obs_phase(self.cfg.group.0, id.origin, id.counter, Phase::SpecExecuted);
            }
        }
        self.spec_queue.push_back(SpecEntry {
            seq,
            ids,
            pre_state,
            responder_saved,
            bufs,
        });
        ctx.metrics().incr("clbft.spec.executed");
    }

    /// Commit caught up with the oldest speculation: flush its buffered
    /// sends (charging their send cost now) and replay the deferred driver
    /// operations. The executor is already in the post-batch state.
    fn finalize_speculation(&mut self, batch_len: usize, ctx: &mut Context<'_>) {
        let entry = self.spec_queue.pop_front().expect("matched entry");
        self.sample_gauges(batch_len, ctx);
        ctx.metrics().record_batch_with(&self.exec_keys, batch_len);
        ctx.metrics()
            .record_batch_with(&self.exec_group_keys, batch_len);
        for (to, bytes, extra_macs) in entry.bufs.sends {
            ctx.spend(self.cfg.cost.send_cost(bytes.len(), extra_macs));
            ctx.metrics().incr("perpetual.messages_sent");
            ctx.send(to, bytes);
        }
        // Flush the deferred observability emissions before the deferred
        // driver ops (which may advance time via `spend`): span phases get
        // commit-time stamps, audit sightings enter in agreement order.
        self.apply_app_obs(entry.bufs.obs, ctx);
        for op in entry.bufs.deferred {
            match op {
                DeferredOp::ArmCallTimers { call_no, timeout } => {
                    // Skip calls that resolved in the meantime (later in the
                    // same batch, or in a later still-queued speculation).
                    if self.calls.get(&call_no).is_some_and(|c| !c.done) {
                        self.arm_call_timers(call_no, timeout, ctx);
                    }
                }
                DeferredOp::Resolve { call_no } => self.resolve_call(call_no, ctx),
                DeferredOp::SubmitTime { token } => {
                    let millis = ctx.now().as_millis() + self.cfg.epoch_offset_ms;
                    let ev = Event::TimeVote { token, millis };
                    let actions = self.bft.on_request(ev.to_request());
                    self.process_actions(actions, ctx);
                }
            }
        }
        ctx.metrics().incr("clbft.spec.finalized");
    }

    /// A view change (or mismatched commit) voided the speculative suffix:
    /// restore the driver+executor snapshot taken before the *oldest*
    /// speculated slot, put the responder bookkeeping back, and drop every
    /// buffered side effect — nothing speculative ever left this node.
    fn rollback_speculation(&mut self, ctx: &mut Context<'_>) {
        let Some(front) = self.spec_queue.front() else {
            return;
        };
        let pre_state = front.pre_state.clone();
        let responder_saved = front.responder_saved.clone();
        let from_seq = front.seq.0;
        let voided = self.spec_queue.len();
        let voided_ids = self.take_voided_span_ids(ctx);
        self.spec_queue.clear();
        ctx.obs_flight(FlightKind::SpecRolledBack, from_seq, 0);
        for (origin, counter) in voided_ids {
            ctx.obs_phase(self.cfg.group.0, origin, counter, Phase::RolledBack);
        }
        // `restore_snapshot` also re-arms retry timers for restored
        // unresolved calls, healing any timer a speculative resolution
        // would have raced.
        self.restore_snapshot(&pre_state, ctx);
        self.responder_state = responder_saved;
        for _ in 0..voided {
            ctx.metrics().incr("clbft.spec.rolled_back");
        }
    }

    /// Drops the speculative queue without restoring state, for paths that
    /// overwrite the state wholesale right after (state install, wipe).
    fn discard_speculation(&mut self, ctx: &mut Context<'_>) {
        if let Some(front) = self.spec_queue.front() {
            ctx.obs_flight(FlightKind::SpecRolledBack, front.seq.0, 0);
        }
        for _ in 0..self.spec_queue.len() {
            ctx.metrics().incr("clbft.spec.rolled_back");
        }
        let voided_ids = self.take_voided_span_ids(ctx);
        self.spec_queue.clear();
        for (origin, counter) in voided_ids {
            ctx.obs_phase(self.cfg.group.0, origin, counter, Phase::RolledBack);
        }
    }

    /// The traced span keys of every request in the speculative queue, for
    /// stamping [`Phase::RolledBack`] after the queue is voided. Empty
    /// (allocation-free) while tracing is off.
    fn take_voided_span_ids(&self, ctx: &Context<'_>) -> Vec<(u64, u64)> {
        if !ctx.trace_level().spans_enabled() {
            return Vec::new();
        }
        self.spec_queue
            .iter()
            .flat_map(|e| e.ids.iter())
            .filter(|id| crate::event::is_traced_origin(id.origin))
            .map(|id| (id.origin, id.counter))
            .collect()
    }

    // ------------------------------------------- checkpointing & recovery

    /// Answers the voter's [`Action::TakeCheckpoint`]: serialize the
    /// durable driver state plus the executor's application snapshot,
    /// charge the cost model, and hand the bytes back so the voter can
    /// digest and broadcast its checkpoint vote.
    fn take_checkpoint(&mut self, seq: pws_clbft::Seq, ctx: &mut Context<'_>) {
        let snapshot = self.build_snapshot();
        ctx.metrics().incr("clbft.ckpt.taken");
        ctx.metrics()
            .sample("clbft.ckpt.snapshot_bytes", snapshot.len() as f64);
        // Fixed serialization bookkeeping only: the digest work is charged
        // per *dirty* page by `drain_page_metrics` after the voter's
        // incremental re-hash, so checkpoint CPU stops scaling with total
        // state size when the state is mostly quiescent.
        ctx.spend(self.cfg.cost.snapshot_fixed);
        let actions = self.bft.on_snapshot(seq, snapshot);
        self.process_actions(actions, ctx);
    }

    /// Serializes the durable driver + executor state, every collection in
    /// sorted order so all correct replicas produce byte-identical
    /// snapshots at the same agreed boundary.
    fn build_snapshot(&self) -> Bytes {
        let mut calls: Vec<crate::snapshot::CallSnap> = self
            .calls
            .iter()
            .map(|(no, c)| crate::snapshot::CallSnap {
                call_no: *no,
                target: c.target.0,
                target_seq: c.target_seq,
                done: c.done,
                read_only: c.read_only,
                payload: c.payload.clone(),
            })
            .collect();
        calls.sort_by_key(|c| c.call_no);
        let mut reply_routes: Vec<(u32, u64, u32)> = self
            .reply_info
            .iter()
            .flat_map(|(g, per)| per.iter().map(|(r, resp)| (g.0, *r, *resp)))
            .collect();
        reply_routes.sort_unstable();
        let mut replies_sent: Vec<(u32, u64, Bytes)> = self
            .replies_sent
            .iter()
            .flat_map(|(g, per)| per.iter().map(|(r, payload)| (g.0, *r, payload.clone())))
            .collect();
        replies_sent.sort_by_key(|(g, r, _)| (*g, *r));
        let mut resolved_tokens: Vec<u64> = self.resolved_tokens.iter().copied().collect();
        resolved_tokens.sort_unstable();
        crate::snapshot::DriverSnapshot {
            next_call: self.next_call,
            next_token: self.next_token,
            next_target_seq: self.next_target_seq.iter().map(|(g, s)| (*g, *s)).collect(),
            calls,
            delivered: self.delivered_external.clone(),
            reply_routes,
            replies_sent,
            resolved_tokens,
            executor: Bytes::from(self.executor.snapshot()),
        }
        .encode()
    }

    /// Installs a state-transferred snapshot: overwrite the durable driver
    /// state and the hosted application, then re-arm the per-call timers
    /// the restored call table implies. Transient pre-agreement state
    /// (candidates, the validation gate, pending shares) is left alone —
    /// it re-derives from retransmissions.
    fn restore_snapshot(&mut self, snapshot: &Bytes, ctx: &mut Context<'_>) {
        // Restoring rewinds `delivered_external` (speculation rollback) or
        // replaces it wholesale (state install): either way this node's
        // exactly-once ledger starts a fresh incarnation at the auditor.
        ctx.obs_audit(self.cfg.group.0, AuditEvent::NodeReset);
        let snap = match crate::snapshot::DriverSnapshot::decode(snapshot) {
            Ok(s) => s,
            Err(e) => {
                // The digest was vouched for by f+1 replicas, so this is a
                // local bug, not a Byzantine payload; fail loudly.
                panic!("verified snapshot failed to decode: {e}");
            }
        };
        self.next_call = snap.next_call;
        self.next_token = snap.next_token;
        self.next_target_seq = snap.next_target_seq.iter().copied().collect();
        self.calls = snap
            .calls
            .iter()
            .map(|c| {
                (
                    c.call_no,
                    CallState {
                        target: GroupId(c.target),
                        target_seq: c.target_seq,
                        done: c.done,
                        read_only: c.read_only,
                        payload: c.payload.clone(),
                    },
                )
            })
            .collect();
        self.delivered_external = snap.delivered.clone();
        self.reply_info = HashMap::new();
        for (g, r, resp) in &snap.reply_routes {
            self.reply_info
                .entry(GroupId(*g))
                .or_default()
                .insert(*r, *resp);
        }
        self.replies_sent = HashMap::new();
        for (g, r, payload) in &snap.replies_sent {
            self.replies_sent
                .entry(GroupId(*g))
                .or_default()
                .insert(*r, payload.clone());
        }
        self.resolved_tokens = snap.resolved_tokens.iter().copied().collect();
        self.executor.restore(&snap.executor);
        // Timer fixups: resolved calls need no timers; unresolved restored
        // calls need a retry timer so responder rotation keeps masking
        // faulty responders after recovery.
        let call_nos: Vec<u64> = self.calls.keys().copied().collect();
        for call_no in call_nos {
            let done = self.calls[&call_no].done;
            if done {
                self.cancel_call_timer(call_no, ctx);
            } else if !self.retry_by_call.contains_key(&call_no) {
                let rt = ctx.set_timer(self.cfg.retry_interval);
                self.retry_timers.insert(rt, call_no);
                self.retry_by_call.insert(call_no, rt);
            }
        }
    }

    /// Tears this replica down to a blank reboot: fresh voter, empty
    /// driver state, all timers cancelled. The hosted executor is left
    /// untouched — it is frozen (nothing executes below the watermark) and
    /// wholly overwritten when state transfer installs a snapshot.
    ///
    /// Unless `cold`, the voter's content-addressed page store survives the
    /// reboot — modeling snapshot pages persisted on disk. The pages are
    /// untrusted cache, not state: the rebooted voter only reuses one after
    /// re-verifying its digest against the next `f + 1`-vouched manifest,
    /// so a warm restart fetches only pages that actually changed (and a
    /// corrupted disk page simply misses the manifest and is re-fetched).
    fn wipe(&mut self, ctx: &mut Context<'_>, cold: bool) {
        ctx.metrics().incr("clbft.recovery.wipes");
        ctx.obs_flight(FlightKind::Wiped, cold as u64, 0);
        // The auditor's exactly-once ledger is per node *incarnation*: a
        // wiped replica legitimately re-executes history during recovery.
        ctx.obs_audit(self.cfg.group.0, AuditEvent::NodeReset);
        self.discard_speculation(ctx);
        self.spec_building = None;
        self.ro_replies.clear();
        let warm_pages = if cold {
            Vec::new()
        } else {
            self.bft.take_page_store()
        };
        self.bft = BftReplica::new(ReplicaId(self.cfg.index), self.cfg.bft_config(self.n));
        self.bft.seed_page_store(warm_pages);
        self.candidates.clear();
        self.validated.clear();
        self.validated_results.clear();
        self.gated.clear();
        self.abort_fired.clear();
        self.calls.clear();
        self.delivered_external = ExecutedSet::new();
        self.reply_info.clear();
        self.replies_sent.clear();
        self.submitted_results.clear();
        self.resolved_tokens.clear();
        self.responder_state.clear();
        self.traced_replies.clear();
        self.next_call = 0;
        self.next_target_seq.clear();
        self.next_token = 0;
        for t in self
            .view_timer
            .take()
            .into_iter()
            .chain(self.batch_timer.take())
        {
            ctx.cancel_timer(t);
        }
        for (t, _) in self.call_timers.drain() {
            ctx.cancel_timer(t);
        }
        for (t, _) in self.retry_timers.drain() {
            ctx.cancel_timer(t);
        }
        self.timers_by_call.clear();
        self.retry_by_call.clear();
        self.retries.clear();
    }

    /// One proactive-recovery turn (paper §7 future work): reboot from
    /// nothing, renegotiate session keys, rejoin through state transfer.
    /// With one replica per group per window, the `≤ f faulty` assumption
    /// becomes time-bounded: a compromised-but-silent replica is flushed
    /// within `n` windows.
    fn proactive_recover(&mut self, ctx: &mut Context<'_>) {
        ctx.metrics().incr("clbft.recovery.proactive_restarts");
        ctx.obs_flight(FlightKind::ProactiveRestart, 0, 0);
        // Warm restart: the on-disk page cache survives (every page is
        // re-verified against the next certified manifest before reuse, so
        // nothing from before the reboot is trusted), keeping proactive
        // recovery's transfer bill proportional to what actually changed.
        self.wipe(ctx, false);
        // Re-derive the pairwise session keys from scratch (the simulated
        // stand-in for an SSL re-handshake with fresh key material) and
        // charge one MAC-key derivation per peer principal.
        self.keys = KeyTable::new(self.cfg.master_seed);
        ctx.spend(self.cfg.cost.mac.saturating_mul(self.n as u64));
        let actions = self.bft.begin_state_fetch();
        self.process_actions(actions, ctx);
    }

    /// Whether an ordering proposal may enter agreement at this replica.
    /// A batched pre-prepare passes only when *every* request in the batch
    /// passes: the batch is the unit of agreement, so it is gated (and
    /// later released) atomically.
    fn gate_ok(&mut self, msg: &Msg) -> bool {
        let Msg::PrePrepare(pp) = msg else {
            return true;
        };
        pp.batch.requests.iter().all(|r| self.request_gate_ok(r))
    }

    fn request_gate_ok(&mut self, request: &pws_clbft::Request) -> bool {
        match Event::decode(&request.payload) {
            Ok(Event::External { .. }) => self.validated.contains(&request.digest()),
            Ok(Event::Result {
                call_no,
                digest,
                payload,
                shares,
            }) => self.result_gate_ok(call_no, digest, &payload, &shares),
            Ok(Event::Abort { call_no }) => {
                self.abort_fired.contains(&call_no)
                    || self.calls.get(&call_no).is_some_and(|c| c.done)
            }
            Ok(Event::TimeVote { .. }) => true,
            // Malformed events pass the gate; execution skips them
            // identically at every correct replica.
            Err(_) => true,
        }
    }

    /// Validates a result proposal: either our own driver already validated
    /// a bundle with this digest, or the embedded shares prove `f_t + 1`
    /// target replicas vouch for the payload.
    fn result_gate_ok(
        &mut self,
        call_no: u64,
        digest: Digest32,
        payload: &Bytes,
        shares: &[BundleShare],
    ) -> bool {
        let Some(call) = self.calls.get(&call_no) else {
            return false; // unknown call: wait (calls are deterministic)
        };
        if call.done || self.validated_results.contains(&(call_no, digest)) {
            return true;
        }
        let target = call.target;
        if digest != reply_digest(payload) || shares.iter().any(|s| s.from.group != target.0) {
            return false;
        }
        let target_f = self.cfg.topology.f(target) as usize;
        let me = self.cfg.topology.principal(self.cfg.group, self.cfg.index);
        let tag = request_tag(self.cfg.group, call_no);
        if verify_bundle(&mut self.keys, shares, &tag, &digest, me, target_f + 1) {
            self.validated_results.insert((call_no, digest));
            true
        } else {
            false
        }
    }

    fn drain_gate(&mut self, ctx: &mut Context<'_>) {
        let mut i = 0;
        while i < self.gated.len() {
            let releasable = {
                let (_, msg) = self.gated[i].clone();
                self.gate_ok(&msg)
            };
            if releasable {
                let (from, msg) = self.gated.swap_remove(i);
                let actions = self.bft.on_message(from, msg);
                self.process_actions(actions, ctx);
            } else {
                i += 1;
            }
        }
    }

    fn submit_event(&mut self, ev: &Event, ctx: &mut Context<'_>) {
        let req = ev.to_request();
        if crate::event::is_traced_origin(req.id.origin) {
            ctx.obs_phase(
                self.cfg.group.0,
                req.id.origin,
                req.id.counter,
                Phase::Queued,
            );
        }
        self.validated.insert(req.digest());
        self.drain_gate(ctx);
        let actions = self.bft.on_request(req);
        self.process_actions(actions, ctx);
    }

    // ---------------------------------------------------------------- voter

    fn handle_out_request(&mut self, from: NodeId, ev: Event, ctx: &mut Context<'_>) {
        let Event::External {
            caller,
            caller_n,
            req_no,
            target_seq,
            ..
        } = &ev
        else {
            return;
        };
        let (caller, caller_n, req_no, target_seq) = (*caller, *caller_n, *req_no, *target_seq);
        if !self.cfg.topology.contains(caller) || self.cfg.topology.n(caller) != caller_n {
            return;
        }
        // Identify which calling driver sent this.
        let Some(driver_idx) = self
            .cfg
            .topology
            .nodes(caller)
            .iter()
            .position(|&n| n == from)
        else {
            return;
        };
        let key = (caller, req_no);
        let req = ev.to_request();
        let digest = req.digest();
        let voters = self
            .candidates
            .entry(key)
            .or_default()
            .entry(digest)
            .or_default();
        voters.insert(driver_idx as u32);
        let threshold = self.cfg.topology.f(caller) as usize + 1;
        if voters.len() < threshold {
            return;
        }
        if self
            .delivered_external
            .contains(&delivered_key(caller, target_seq))
        {
            // A retransmit of an already-executed request: the caller is
            // still waiting for the reply (e.g. the original responder is
            // faulty). Honour the rotated responder choice and re-send our
            // share.
            let Event::External { responder, .. } = ev else {
                return;
            };
            let responder = responder.min(self.n - 1);
            self.record_reply_route(caller, req_no, responder);
            self.candidates.remove(&key);
            let retained = self
                .replies_sent
                .get(&caller)
                .and_then(|per| per.get(&req_no))
                .cloned();
            if let Some(payload) = retained {
                ctx.metrics().incr("perpetual.shares_retransmitted");
                self.send_share(caller, req_no, responder, payload, ctx);
            }
            return;
        }
        if !self.validated.contains(&digest) {
            ctx.metrics().incr("perpetual.external_requests_validated");
            self.submit_event(&ev, ctx);
        }
    }

    /// Builds this replica's bundle share for a reply and routes it to the
    /// responder (possibly ourselves).
    fn send_share(
        &mut self,
        caller: GroupId,
        req_no: u64,
        responder: u32,
        payload: Bytes,
        ctx: &mut Context<'_>,
    ) {
        let digest = reply_digest(&payload);
        let caller_principals = self.cfg.topology.principals(caller);
        let me = self.cfg.topology.principal(self.cfg.group, self.cfg.index);
        let tag = request_tag(caller, req_no);
        ctx.spend(
            self.cfg
                .cost
                .mac
                .saturating_mul(caller_principals.len() as u64),
        );
        let share = BundleShare::build(&mut self.keys, me, &tag, digest, &caller_principals);
        if responder == self.cfg.index {
            self.handle_reply_share(caller, req_no, payload, share, ctx);
        } else {
            let node = self.cfg.topology.node(self.cfg.group, responder);
            self.send_pmsg(
                node,
                &PMsg::ReplyShare {
                    caller,
                    req_no,
                    payload,
                    share,
                },
                caller_principals.len(),
                ctx,
            );
        }
    }

    fn handle_bft_bytes(&mut self, from: NodeId, inner: &[u8], ctx: &mut Context<'_>) {
        // Only accept intra-group traffic.
        let Some(idx) = self
            .cfg
            .topology
            .nodes(self.cfg.group)
            .iter()
            .position(|&n| n == from)
        else {
            return;
        };
        let Ok(msg) = bft_wire::decode_msg(inner) else {
            return;
        };
        let from = ReplicaId(idx as u32);
        if !self.gate_ok(&msg) {
            ctx.metrics().incr("perpetual.proposals_gated");
            self.gated.push((from, msg));
            return;
        }
        let actions = self.bft.on_message(from, msg);
        self.process_actions(actions, ctx);
    }

    // ------------------------------------------------------- read fast path

    /// A caller replica asks us to answer a read from committed state. The
    /// voter's read gate decides admissibility (not in a view change, not
    /// mid-state-transfer, no speculation ahead of the committed frontier);
    /// a closed gate drops the request silently and the caller's quorum
    /// falls short until it retries or falls back to the ordered path.
    fn handle_read_request(
        &mut self,
        from: NodeId,
        caller: GroupId,
        caller_n: u32,
        req_no: u64,
        payload: Bytes,
        ctx: &mut Context<'_>,
    ) {
        if !self.cfg.topology.contains(caller)
            || self.cfg.topology.n(caller) != caller_n
            || !self.cfg.topology.nodes(caller).contains(&from)
        {
            return;
        }
        let req = crate::event::read_request(caller, req_no, payload);
        let mut served = false;
        let mut rest = Vec::new();
        for a in self.bft.on_request(req) {
            match a {
                Action::ReadOnly(r) => {
                    served = true;
                    self.serve_read(from, r, ctx);
                }
                other => rest.push(other),
            }
        }
        if !served {
            ctx.metrics().incr("clbft.ro.refused");
        }
        self.process_actions(rest, ctx);
    }

    /// Executes a gate-approved read against a scratch copy of the
    /// committed application state and sends the asking node our vouched
    /// reply. The execution must prove itself side-effect free: anything
    /// beyond one reply to the asking handle (plus CPU spends) means the
    /// operation was not actually read-only, and the request is dropped —
    /// the caller's quorum fails and it falls back to the ordered path.
    fn serve_read(&mut self, from: NodeId, req: pws_clbft::Request, ctx: &mut Context<'_>) {
        let Some((caller, req_no)) = crate::event::read_request_parts(req.id) else {
            return;
        };
        if !self.spec_queue.is_empty() {
            // Defense in depth: the voter's gate already refuses reads
            // while speculation is outstanding, but the executor holding
            // uncommitted state is disqualifying on its own.
            ctx.metrics().incr("clbft.ro.unservable");
            ctx.obs_flight(FlightKind::RoRefused, 0, 0);
            return;
        }
        let rid = req.id;
        let scratch = self.executor.snapshot();
        let handle = RequestHandle { caller, req_no };
        let mut out = AppOutput::new(self.next_call, self.next_token);
        self.executor.on_event(
            AppEvent::Request {
                handle,
                payload: req.payload,
            },
            &mut out,
        );
        self.executor.restore(&scratch);
        let mut reply: Option<Bytes> = None;
        let mut clean = true;
        for cmd in out.cmds() {
            match cmd {
                AppCmd::Reply { to, payload } if *to == handle && reply.is_none() => {
                    reply = Some(payload.clone());
                }
                AppCmd::Spend(d) => ctx.spend(*d),
                _ => clean = false,
            }
        }
        let Some(mut payload) = reply.filter(|_| clean) else {
            ctx.metrics().incr("clbft.ro.unservable");
            ctx.obs_flight(FlightKind::RoRefused, 0, 0);
            return;
        };
        ctx.spend(self.cfg.cost.ro_serve);
        if self.cfg.fault == FaultMode::CorruptReplies {
            let mut bad = payload.to_vec();
            if let Some(b) = bad.first_mut() {
                *b ^= 0xff;
            } else {
                bad.push(0xff);
            }
            payload = Bytes::from(bad);
        }
        let digest = reply_digest(&payload);
        let caller_principals = self.cfg.topology.principals(caller);
        let me = self.cfg.topology.principal(self.cfg.group, self.cfg.index);
        let tag = request_tag(caller, req_no);
        ctx.spend(
            self.cfg
                .cost
                .mac
                .saturating_mul(caller_principals.len() as u64),
        );
        let share = BundleShare::build(&mut self.keys, me, &tag, digest, &caller_principals);
        ctx.metrics().incr("clbft.ro.served");
        ctx.obs_phase(self.cfg.group.0, rid.origin, rid.counter, Phase::RoServed);
        self.send_pmsg(
            from,
            &PMsg::ReadReply {
                req_no,
                payload,
                share,
            },
            caller_principals.len(),
            ctx,
        );
    }

    /// One target replica's fast-path read answer. Votes are counted once
    /// per replica (the reply-flood rule), shares must verify individually,
    /// and only `2f_t + 1` matching payloads promote the result into this
    /// group's own ordered stream as a share-proven [`Event::Result`] — the
    /// same shape the ordered reply path produces, so the gate and the
    /// executor cannot tell the two paths apart.
    fn handle_read_reply(
        &mut self,
        from: NodeId,
        req_no: u64,
        payload: Bytes,
        share: BundleShare,
        ctx: &mut Context<'_>,
    ) {
        let Some(call) = self.calls.get(&req_no) else {
            return;
        };
        if call.done || !call.read_only {
            return;
        }
        let target = call.target;
        if share.from.group != target.0 {
            return;
        }
        let idx = share.from.replica;
        // The sender must be the very replica the share claims to be from.
        if self.cfg.topology.nodes(target).get(idx as usize) != Some(&from) {
            return;
        }
        if share.reply_digest != reply_digest(&payload) {
            return;
        }
        // One counted vote per target replica, bounded by n_t: a Byzantine
        // replica spraying conflicting replies burns its single vote.
        if !self.ro_replies.entry(req_no).or_default().voted.insert(idx) {
            ctx.metrics().incr("clbft.ro.duplicate_votes");
            return;
        }
        let me = self.cfg.topology.principal(self.cfg.group, self.cfg.index);
        let tag = request_tag(self.cfg.group, req_no);
        ctx.spend(self.cfg.cost.mac);
        if !share.verify(&mut self.keys, &tag, me) {
            ctx.metrics().incr("clbft.ro.shares_rejected");
            return;
        }
        let digest = share.reply_digest;
        let coll = self.ro_replies.get_mut(&req_no).expect("vote just counted");
        let (_, shares) = coll
            .by_digest
            .entry(digest)
            .or_insert_with(|| (payload, Vec::new()));
        shares.push(share);
        let target_f = self.cfg.topology.f(target) as usize;
        let target_n = self.cfg.topology.n(target) as usize;
        let threshold = self
            .cfg
            .read_only_quorum
            .unwrap_or((2 * target_f + 1).min(target_n));
        if shares.len() < threshold {
            return;
        }
        let coll = self.ro_replies.remove(&req_no).expect("collector present");
        let (payload, shares) = coll
            .by_digest
            .into_iter()
            .find(|(d, _)| *d == digest)
            .expect("quorum digest present")
            .1;
        ctx.metrics().incr("clbft.ro.accepted");
        self.validated_results.insert((req_no, digest));
        let ev = Event::Result {
            call_no: req_no,
            digest,
            payload,
            shares,
        };
        self.submitted_results
            .entry(req_no)
            .or_default()
            .push(ev.request_id());
        self.submit_event(&ev, ctx);
    }

    // ------------------------------------------------------------ responder

    fn handle_reply_share(
        &mut self,
        caller: GroupId,
        req_no: u64,
        payload: Bytes,
        share: BundleShare,
        ctx: &mut Context<'_>,
    ) {
        if share.reply_digest != reply_digest(&payload) {
            return; // internally inconsistent share
        }
        if share.from.group != self.cfg.group.0 || share.from.replica >= self.n {
            return;
        }
        let entry = self.responder_state.entry((caller, req_no)).or_default();
        if entry.sent {
            return;
        }
        let (stored_payload, shares) = entry
            .by_digest
            .entry(share.reply_digest)
            .or_insert_with(|| (payload, Vec::new()));
        if shares.iter().any(|s| s.from == share.from) {
            return;
        }
        shares.push(share.clone());
        // Wait for 2f+1 matching shares so at least f+1 come from correct
        // replicas: then every correct calling driver can validate the
        // bundle even if f shares carry bad MACs (see DESIGN.md).
        let threshold = (2 * self.f + 1).min(self.n) as usize;
        if shares.len() >= threshold {
            let bundle_payload = stored_payload.clone();
            let bundle_shares = shares.clone();
            entry.sent = true;
            self.send_bundle(caller, req_no, bundle_payload, bundle_shares, ctx);
        }
    }

    fn send_bundle(
        &mut self,
        caller: GroupId,
        req_no: u64,
        payload: Bytes,
        shares: Vec<BundleShare>,
        ctx: &mut Context<'_>,
    ) {
        ctx.metrics().incr("perpetual.bundles_sent");
        let caller_nodes: Vec<NodeId> = self.cfg.topology.nodes(caller).to_vec();
        let equivocate = self.cfg.fault == FaultMode::EquivocatingResponder;
        for (i, node) in caller_nodes.into_iter().enumerate() {
            let msg = if equivocate && i % 2 == 1 {
                // Corrupt the payload for half of the drivers; MACs no
                // longer match, so these drivers must reject the bundle.
                let mut bad = payload.to_vec();
                if let Some(b) = bad.first_mut() {
                    *b ^= 0xff;
                } else {
                    bad.push(0xff);
                }
                PMsg::ReplyBundle {
                    req_no,
                    payload: Bytes::from(bad),
                    shares: shares.clone(),
                }
            } else {
                PMsg::ReplyBundle {
                    req_no,
                    payload: payload.clone(),
                    shares: shares.clone(),
                }
            };
            self.send_pmsg(node, &msg, 0, ctx);
        }
    }

    // --------------------------------------------------------------- driver

    fn handle_reply_bundle(
        &mut self,
        req_no: u64,
        payload: Bytes,
        shares: Vec<BundleShare>,
        ctx: &mut Context<'_>,
    ) {
        let Some(call) = self.calls.get(&req_no) else {
            return;
        };
        if call.done {
            return;
        }
        let target = call.target;
        let target_f = self.cfg.topology.f(target) as usize;
        let digest = reply_digest(&payload);
        let me = self.cfg.topology.principal(self.cfg.group, self.cfg.index);
        let tag = request_tag(self.cfg.group, req_no);
        // Shares must come from the target group.
        if shares.iter().any(|s| s.from.group != target.0) {
            return;
        }
        ctx.spend(self.cfg.cost.mac.saturating_mul(shares.len() as u64));
        if !verify_bundle(&mut self.keys, &shares, &tag, &digest, me, target_f + 1) {
            ctx.metrics().incr("perpetual.bundles_rejected");
            return;
        }
        ctx.metrics().incr("perpetual.bundles_validated");
        self.validated_results.insert((req_no, digest));
        let ev = Event::Result {
            call_no: req_no,
            digest,
            payload,
            shares,
        };
        self.submitted_results
            .entry(req_no)
            .or_default()
            .push(ev.request_id());
        self.submit_event(&ev, ctx);
    }

    fn handle_ordered(&mut self, payload: Bytes, ctx: &mut Context<'_>) {
        let Ok(ev) = Event::decode(&payload) else {
            return;
        };
        match ev {
            Event::External {
                caller,
                req_no,
                target_seq,
                responder,
                payload,
                ..
            } => {
                let key = (caller, req_no);
                if !self
                    .delivered_external
                    .insert(delivered_key(caller, target_seq))
                {
                    return;
                }
                ctx.obs_audit(
                    self.cfg.group.0,
                    AuditEvent::Executed {
                        origin: caller.0 as u64,
                        target_seq,
                    },
                );
                self.candidates.remove(&key);
                self.record_reply_route(caller, req_no, responder.min(self.n - 1));
                ctx.metrics().incr("perpetual.requests_delivered");
                if ctx.trace_level().spans_enabled() {
                    let rid = crate::event::external_span_id(caller, target_seq);
                    ctx.obs_phase(self.cfg.group.0, rid.0, rid.1, Phase::Executed);
                    // The reply may be produced now (inline service) or much
                    // later (after an outcall round-trip); either way the
                    // route back to this span survives until then.
                    insert_bounded(
                        self.traced_replies.entry(caller).or_default(),
                        req_no,
                        rid,
                        self.cfg.reply_retention,
                    );
                }
                self.deliver(
                    AppEvent::Request {
                        handle: RequestHandle { caller, req_no },
                        payload,
                    },
                    ctx,
                );
            }
            Event::Result {
                call_no, payload, ..
            } => {
                if !self.mark_call_done(call_no, ctx) {
                    return;
                }
                ctx.metrics().incr("perpetual.calls_completed");
                let now_s = ctx.now().as_secs_f64();
                ctx.metrics().sample("perpetual.completion_time_s", now_s);
                self.deliver(
                    AppEvent::Reply {
                        call: CallId(call_no),
                        payload,
                    },
                    ctx,
                );
            }
            Event::Abort { call_no } => {
                if !self.mark_call_done(call_no, ctx) {
                    return;
                }
                ctx.metrics().incr("perpetual.calls_aborted");
                self.deliver(
                    AppEvent::Aborted {
                        call: CallId(call_no),
                    },
                    ctx,
                );
            }
            Event::TimeVote { token, millis } => {
                if !self.resolved_tokens.insert(token) {
                    return;
                }
                self.deliver(AppEvent::Time { token, millis }, ctx);
            }
        }
    }

    fn cancel_call_timer(&mut self, call_no: u64, ctx: &mut Context<'_>) {
        if let Some(t) = self.timers_by_call.remove(&call_no) {
            self.call_timers.remove(&t);
            ctx.cancel_timer(t);
        }
        if let Some(t) = self.retry_by_call.remove(&call_no) {
            self.retry_timers.remove(&t);
            ctx.cancel_timer(t);
        }
        self.retries.remove(&call_no);
    }

    /// Marks a call resolved (first resolution wins). Cancels its timers and
    /// withdraws now-obsolete proposals from agreement. Returns whether this
    /// was the first resolution. Under speculation only the reversible half
    /// (the `done` flag, which the pre-state snapshot covers) happens now;
    /// the voter- and timer-touching half waits in the commit buffers.
    fn mark_call_done(&mut self, call_no: u64, ctx: &mut Context<'_>) -> bool {
        let Some(call) = self.calls.get_mut(&call_no) else {
            return false;
        };
        if call.done {
            return false;
        }
        call.done = true;
        if let Some(bufs) = self.spec_building.as_mut() {
            bufs.deferred.push(DeferredOp::Resolve { call_no });
            return true;
        }
        self.resolve_call(call_no, ctx);
        true
    }

    /// The irreversible half of a call resolution.
    fn resolve_call(&mut self, call_no: u64, ctx: &mut Context<'_>) {
        self.cancel_call_timer(call_no, ctx);
        self.ro_replies.remove(&call_no);
        let mut obsolete = self.submitted_results.remove(&call_no).unwrap_or_default();
        obsolete.push(Event::Abort { call_no }.request_id());
        for id in obsolete {
            let actions = self.bft.drop_request(id);
            self.process_actions(actions, ctx);
        }
        // The gate may be holding proposals that are now releasable
        // (aborts gate-open once the call is done).
        self.drain_gate(ctx);
    }

    /// Arms the abort-timeout and retry timers for a freshly issued call —
    /// or defers the arming to commit time when speculating (a rolled-back
    /// call must leave no timer behind).
    fn arm_call_timers(
        &mut self,
        call_no: u64,
        timeout: Option<SimDuration>,
        ctx: &mut Context<'_>,
    ) {
        if let Some(bufs) = self.spec_building.as_mut() {
            bufs.deferred
                .push(DeferredOp::ArmCallTimers { call_no, timeout });
            return;
        }
        if let Some(d) = timeout {
            let t = ctx.set_timer(d);
            self.call_timers.insert(t, call_no);
            self.timers_by_call.insert(call_no, t);
        }
        if !self.retry_by_call.contains_key(&call_no) {
            let rt = ctx.set_timer(self.cfg.retry_interval);
            self.retry_timers.insert(rt, call_no);
            self.retry_by_call.insert(call_no, rt);
        }
    }

    fn deliver(&mut self, ev: AppEvent, ctx: &mut Context<'_>) {
        let mut out = AppOutput::new(self.next_call, self.next_token);
        self.executor.on_event(ev, &mut out);
        let (nc, nt) = out.counters();
        self.next_call = nc;
        self.next_token = nt;
        let (mut txn_decided, mut reshard_step) = (false, false);
        for name in out.take_metrics() {
            txn_decided |= name == "clbft.txn.committed" || name == "clbft.txn.aborted";
            reshard_step |= name.starts_with("clbft.reshard.");
            ctx.metrics().incr(&name);
        }
        // At most one flight record per delivered event: the ring is for
        // rare protocol milestones, not per-key accounting.
        if txn_decided {
            ctx.obs_flight(FlightKind::TxnRecord, 0, 0);
        }
        if reshard_step {
            ctx.obs_flight(FlightKind::ReshardRecord, 0, 0);
        }
        let obs = out.take_obs();
        if !obs.is_empty() {
            // Under speculation the emissions wait in the commit buffers: a
            // rolled-back slot must leave no phantom spans, gauge samples,
            // or audit sightings behind.
            if let Some(bufs) = self.spec_building.as_mut() {
                bufs.obs.extend(obs);
            } else {
                self.apply_app_obs(obs, ctx);
            }
        }
        let cmds = std::mem::take(&mut out.cmds);
        for cmd in cmds {
            self.run_cmd(cmd, ctx);
        }
    }

    /// Applies application-layer observability emissions, qualifying each
    /// with this replica's group and the current sim-time.
    fn apply_app_obs(&mut self, obs: Vec<AppObs>, ctx: &mut Context<'_>) {
        for o in obs {
            match o {
                AppObs::Proto {
                    family,
                    id,
                    phase,
                    count,
                } => {
                    let key = ProtoKey {
                        group: self.cfg.group.0,
                        family,
                        id,
                    };
                    ctx.obs_proto(key, phase, count);
                }
                AppObs::Audit(ev) => ctx.obs_audit(self.cfg.group.0, ev),
                AppObs::Gauge { name, value } => {
                    if ctx.trace_level().spans_enabled() {
                        ctx.gauge(&name, value);
                    }
                }
            }
        }
    }

    fn run_cmd(&mut self, cmd: AppCmd, ctx: &mut Context<'_>) {
        match cmd {
            AppCmd::Call {
                call,
                target,
                payload,
                timeout,
                read_only,
            } => {
                if !self.cfg.topology.contains(target) || target == self.cfg.group {
                    // Unknown target or self-call: abort immediately and
                    // deterministically (every replica does the same).
                    self.calls.insert(
                        call.0,
                        CallState {
                            target,
                            target_seq: 0,
                            done: true,
                            read_only,
                            payload,
                        },
                    );
                    self.deliver(AppEvent::Aborted { call }, ctx);
                    return;
                }
                if read_only {
                    // Fast path: no per-target sequence number is consumed —
                    // the read never enters the target's agreement stream.
                    self.calls.insert(
                        call.0,
                        CallState {
                            target,
                            target_seq: 0,
                            done: false,
                            read_only: true,
                            payload: payload.clone(),
                        },
                    );
                    ctx.metrics().incr("perpetual.reads_issued");
                    let msg = PMsg::ReadRequest {
                        caller: self.cfg.group,
                        caller_n: self.n,
                        req_no: call.0,
                        payload,
                    };
                    for node in self.cfg.topology.nodes(target).to_vec() {
                        self.send_pmsg(node, &msg, 0, ctx);
                    }
                    self.arm_call_timers(call.0, timeout, ctx);
                    return;
                }
                let seq = self.next_target_seq.entry(target.0).or_insert(0);
                let target_seq = *seq;
                *seq += 1;
                self.calls.insert(
                    call.0,
                    CallState {
                        target,
                        target_seq,
                        done: false,
                        read_only: false,
                        payload: payload.clone(),
                    },
                );
                let target_n = self.cfg.topology.n(target);
                let ev = Event::External {
                    caller: self.cfg.group,
                    caller_n: self.n,
                    req_no: call.0,
                    target_seq,
                    responder: (call.0 % target_n as u64) as u32,
                    timeout_ms: timeout.map_or(0, |d| d.as_millis()),
                    payload,
                };
                ctx.metrics().incr("perpetual.calls_issued");
                let msg = PMsg::OutRequest(ev);
                for node in self.cfg.topology.nodes(target).to_vec() {
                    self.send_pmsg(node, &msg, 0, ctx);
                }
                self.arm_call_timers(call.0, timeout, ctx);
            }
            AppCmd::Reply { to, payload } => {
                // The recorded route is an optimization (it tracks the
                // caller's rotated responder preference); a missing entry
                // — e.g. evicted around a straggler delivery — falls back
                // to the deterministic default responder, which every
                // replica derives identically from the agreed request
                // number and a retrying caller rotates past if faulty.
                let responder = self
                    .reply_info
                    .get(&to.caller)
                    .and_then(|per| per.get(&to.req_no))
                    .copied()
                    .unwrap_or((to.req_no % self.n as u64) as u32);
                let mut payload = payload;
                if self.cfg.fault == FaultMode::CorruptReplies {
                    let mut bad = payload.to_vec();
                    if let Some(b) = bad.first_mut() {
                        *b ^= 0xff;
                    } else {
                        bad.push(0xff);
                    }
                    payload = Bytes::from(bad);
                }
                // Bounded retention: the oldest reply goes once the caller
                // can no longer be waiting on it (see
                // DEFAULT_REPLY_RETENTION for the contract).
                insert_bounded(
                    self.replies_sent.entry(to.caller).or_default(),
                    to.req_no,
                    payload.clone(),
                    self.cfg.reply_retention,
                );
                ctx.metrics().incr("perpetual.replies_produced");
                if let Some((origin, counter)) = self
                    .traced_replies
                    .get_mut(&to.caller)
                    .and_then(|per| per.remove(&to.req_no))
                {
                    ctx.obs_phase(self.cfg.group.0, origin, counter, Phase::Replied);
                }
                self.send_share(to.caller, to.req_no, responder, payload, ctx);
            }
            AppCmd::QueryTime { token } => {
                if let Some(bufs) = self.spec_building.as_mut() {
                    // The vote enters agreement at commit time, reading the
                    // clock then — a rolled-back speculation must not have
                    // submitted anything to the voter.
                    bufs.deferred.push(DeferredOp::SubmitTime { token });
                    return;
                }
                let millis = ctx.now().as_millis() + self.cfg.epoch_offset_ms;
                let ev = Event::TimeVote { token, millis };
                // Every replica proposes its own local reading; CLBFT's
                // request-id dedup makes the primary's suggestion win (§4.2).
                let actions = self.bft.on_request(ev.to_request());
                self.process_actions(actions, ctx);
            }
            AppCmd::Spend(d) => ctx.spend(d),
        }
    }
}

impl Node for PerpetualReplica {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.cfg.fault.is_silent() {
            return;
        }
        debug_assert_eq!(ctx.id(), self.my_node(), "topology/node mismatch");
        if let Some(after_ms) = self.cfg.fault.stale_drop_after_ms() {
            self.stale_timer = Some(ctx.set_timer(SimDuration::from_millis(after_ms)));
        }
        // A singleton group has no peers to transfer state back from: a
        // wipe would be an irrecoverable crash, so proactive recovery only
        // engages for replicated groups.
        if self.n > 1 {
            if let Some(window) = self.cfg.recovery_interval {
                // Staggered by index: exactly one replica per group
                // recovers per window, round-robin.
                self.recovery_timer =
                    Some(ctx.set_timer(window.saturating_mul(self.cfg.index as u64 + 1)));
            }
        }
        let seed = group_seed(self.cfg.master_seed, self.cfg.group);
        self.deliver(AppEvent::Init { seed }, ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
        if self.cfg.fault.is_silent() {
            return;
        }
        ctx.spend(self.cfg.cost.recv_cost(msg.len(), 0));
        let Ok(pmsg) = decode_pmsg(&msg) else {
            ctx.metrics().incr("perpetual.malformed_messages");
            return;
        };
        match pmsg {
            PMsg::Bft(inner) => self.handle_bft_bytes(from, &inner, ctx),
            PMsg::OutRequest(ev) => self.handle_out_request(from, ev, ctx),
            PMsg::ReplyShare {
                caller,
                req_no,
                payload,
                share,
            } => {
                // Shares must come from within this group.
                if self.cfg.topology.nodes(self.cfg.group).contains(&from) {
                    self.handle_reply_share(caller, req_no, payload, share, ctx);
                }
            }
            PMsg::ReplyBundle {
                req_no,
                payload,
                shares,
            } => self.handle_reply_bundle(req_no, payload, shares, ctx),
            PMsg::ReadRequest {
                caller,
                caller_n,
                req_no,
                payload,
            } => self.handle_read_request(from, caller, caller_n, req_no, payload, ctx),
            PMsg::ReadReply {
                req_no,
                payload,
                share,
            } => self.handle_read_reply(from, req_no, payload, share, ctx),
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_>) {
        if self.cfg.fault.is_silent() {
            return;
        }
        if self.stale_timer == Some(timer) {
            self.stale_timer = None;
            ctx.metrics().incr("clbft.recovery.stale_drops");
            // Churny fault: silently drop to a blank state — no fetch, no
            // announcement. Only the peers' checkpoint-vote lag evidence
            // can bring this replica back. The warm variant keeps the
            // on-disk page cache; the cold variant loses it too.
            let cold = matches!(self.cfg.fault, FaultMode::StaleDropCold { .. });
            self.wipe(ctx, cold);
            return;
        }
        if self.recovery_timer == Some(timer) {
            let period = self
                .cfg
                .recovery_interval
                .expect("recovery timer implies an interval")
                .saturating_mul(self.n as u64);
            self.recovery_timer = Some(ctx.set_timer(period));
            self.proactive_recover(ctx);
            return;
        }
        if self.view_timer == Some(timer) {
            self.view_timer = None;
            ctx.metrics().incr("perpetual.view_timeouts");
            let actions = self.bft.on_view_timer();
            self.process_actions(actions, ctx);
            return;
        }
        if self.batch_timer == Some(timer) {
            self.batch_timer = None;
            ctx.metrics().incr("clbft.batch_timeouts");
            let actions = self.bft.on_batch_timer();
            self.process_actions(actions, ctx);
            return;
        }
        if let Some(call_no) = self.call_timers.remove(&timer) {
            self.timers_by_call.remove(&call_no);
            if self.calls.get(&call_no).is_some_and(|c| c.done) {
                return;
            }
            ctx.metrics().incr("perpetual.call_timeouts");
            self.abort_fired.insert(call_no);
            self.drain_gate(ctx);
            let ev = Event::Abort { call_no };
            let actions = self.bft.on_request(ev.to_request());
            self.process_actions(actions, ctx);
            return;
        }
        if let Some(call_no) = self.retry_timers.remove(&timer) {
            self.retry_by_call.remove(&call_no);
            let Some(call) = self.calls.get(&call_no) else {
                return;
            };
            if call.done {
                return;
            }
            let target = call.target;
            if call.read_only {
                // A replicated caller must never demote a read to the
                // ordered path at retry time: retries fire at
                // non-deterministic moments, and consuming a target_seq
                // then would diverge the replicas. Re-broadcasting the
                // read is idempotent; persistent quorum failure surfaces
                // as the call's abort timeout.
                ctx.metrics().incr("perpetual.call_retries");
                ctx.metrics().incr("clbft.ro.retries");
                let payload = call.payload.clone();
                let msg = PMsg::ReadRequest {
                    caller: self.cfg.group,
                    caller_n: self.n,
                    req_no: call_no,
                    payload,
                };
                for node in self.cfg.topology.nodes(target).to_vec() {
                    self.send_pmsg(node, &msg, 0, ctx);
                }
                let rt = ctx.set_timer(self.cfg.retry_interval);
                self.retry_timers.insert(rt, call_no);
                self.retry_by_call.insert(call_no, rt);
                return;
            }
            // Rotate the responder and retransmit the request to every
            // target voter; already-executed requests only re-trigger the
            // reply path on the target side.
            let r = self.retries.entry(call_no).or_insert(0);
            *r += 1;
            let retries = *r as u64;
            ctx.metrics().incr("perpetual.call_retries");
            let target_n = self.cfg.topology.n(target);
            let (payload, target_seq) = match self.calls.get(&call_no) {
                Some(c) => (c.payload.clone(), c.target_seq),
                None => return,
            };
            let ev = Event::External {
                caller: self.cfg.group,
                caller_n: self.n,
                req_no: call_no,
                target_seq,
                responder: ((call_no + retries) % target_n as u64) as u32,
                timeout_ms: 0,
                payload,
            };
            let msg = PMsg::OutRequest(ev);
            for node in self.cfg.topology.nodes(target).to_vec() {
                self.send_pmsg(node, &msg, 0, ctx);
            }
            let rt = ctx.set_timer(self.cfg.retry_interval);
            self.retry_timers.insert(rt, call_no);
            self.retry_by_call.insert(call_no, rt);
        }
    }
}
