//! Replica snapshot codec for checkpointing and state transfer.
//!
//! A Perpetual replica's checkpointable state has two parts: the **driver**
//! bookkeeping that must survive recovery (which external requests were
//! delivered, which calls resolved, what was replied — everything needed to
//! keep deduplicating and re-serving after a restore) and the opaque
//! **executor** snapshot (the hosted application, captured through
//! [`crate::Executor::snapshot`]). Both are serialized with the same
//! dependency-free codec as the wire frames, with every map emitted in
//! sorted key order so all correct replicas produce byte-identical
//! snapshots at the same agreed boundary — the bytes feed the checkpoint
//! digest the group votes on.
//!
//! Deliberately *excluded* is transient pre-agreement state (candidate
//! votes, the validation gate, pending bundle shares): it is re-derivable
//! from retransmissions and must not perturb the digest.

use bytes::Bytes;
pub use pws_clbft::wire::{Decoder, Encoder, WireError};
use pws_clbft::ExecutedSet;

/// Upper bound on any one collection in a snapshot, mirroring the wire
/// codec's allocation caps.
const MAX_SNAPSHOT_ITEMS: usize = 1 << 20;

/// One outcall's durable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSnap {
    /// The call number.
    pub call_no: u64,
    /// The target group (raw id).
    pub target: u32,
    /// The dense per-target dedup sequence assigned to the call.
    pub target_seq: u64,
    /// Whether the call has resolved (reply or abort delivered).
    pub done: bool,
    /// Whether the call travels the read-only fast path (no `target_seq`
    /// consumed; retransmits re-broadcast the read instead of an ordered
    /// request).
    pub read_only: bool,
    /// The original request payload, kept for retransmission.
    pub payload: Bytes,
}

/// The durable driver state captured at a checkpoint boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriverSnapshot {
    /// Next outcall number to assign.
    pub next_call: u64,
    /// Next time-query token to assign.
    pub next_token: u64,
    /// Next per-target dedup sequence to assign, `(target group, next)`,
    /// sorted.
    pub next_target_seq: Vec<(u32, u64)>,
    /// Outcall table, sorted by call number.
    pub calls: Vec<CallSnap>,
    /// Delivered external requests, compacted per calling group
    /// (origin = caller group id, counter = the caller's dense per-target
    /// `target_seq`): O(callers + reorder residue) bytes instead of 12
    /// per delivered request, sharded targets included.
    pub delivered: ExecutedSet,
    /// Reply routes `(caller group, req_no, responder)`, sorted by key.
    /// Bounded per caller like `replies_sent`.
    pub reply_routes: Vec<(u32, u64, u32)>,
    /// Produced replies `(caller group, req_no, payload)`, sorted by key.
    /// Bounded: the driver retains only the newest replies per caller
    /// (`ReplicaConfig::reply_retention`, default
    /// `DEFAULT_REPLY_RETENTION`), so this section no longer grows with
    /// request history.
    pub replies_sent: Vec<(u32, u64, Bytes)>,
    /// Resolved time-vote tokens, sorted.
    pub resolved_tokens: Vec<u64>,
    /// The opaque executor (application) snapshot.
    pub executor: Bytes,
}

impl DriverSnapshot {
    /// Serializes the snapshot (all collections must already be sorted;
    /// [`DriverSnapshot`] builders in this crate guarantee it).
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        // Version 4: the executor (application) bytes moved to the front,
        // directly after the version byte. The executor section is large
        // and mostly static while the driver bookkeeping ahead of it used
        // to shift in length every boundary; leading with it keeps the
        // application bytes at stable page offsets so incremental
        // checkpoint hashing and Merkle page transfer see unchanged pages
        // as unchanged. (v3 added the per-call read-only flag; v2 made
        // `delivered` a per-origin compact ExecutedSet.)
        e.put_u8(4);
        e.put_bytes(&self.executor);
        e.put_u64(self.next_call);
        e.put_u64(self.next_token);
        e.put_u32(self.next_target_seq.len() as u32);
        for (g, s) in &self.next_target_seq {
            e.put_u32(*g);
            e.put_u64(*s);
        }
        e.put_u32(self.calls.len() as u32);
        for c in &self.calls {
            e.put_u64(c.call_no);
            e.put_u32(c.target);
            e.put_u64(c.target_seq);
            e.put_u8(u8::from(c.done));
            e.put_u8(u8::from(c.read_only));
            e.put_bytes(&c.payload);
        }
        self.delivered.encode_into(&mut e);
        e.put_u32(self.reply_routes.len() as u32);
        for (g, r, resp) in &self.reply_routes {
            e.put_u32(*g);
            e.put_u64(*r);
            e.put_u32(*resp);
        }
        e.put_u32(self.replies_sent.len() as u32);
        for (g, r, payload) in &self.replies_sent {
            e.put_u32(*g);
            e.put_u64(*r);
            e.put_bytes(payload);
        }
        e.put_u32(self.resolved_tokens.len() as u32);
        for t in &self.resolved_tokens {
            e.put_u64(*t);
        }
        e.finish()
    }

    /// Deserializes a snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for truncated, oversized, or unversioned
    /// input.
    pub fn decode(buf: &[u8]) -> Result<DriverSnapshot, WireError> {
        let mut d = Decoder::new(buf);
        if d.u8()? != 4 {
            return Err(snapshot_err());
        }
        let executor = d.bytes()?;
        let next_call = d.u64()?;
        let next_token = d.u64()?;
        let next_target_seq = counted(&mut d, MAX_SNAPSHOT_ITEMS, snapshot_err, |d| {
            Ok((d.u32()?, d.u64()?))
        })?;
        let calls = counted(&mut d, MAX_SNAPSHOT_ITEMS, snapshot_err, |d| {
            Ok(CallSnap {
                call_no: d.u64()?,
                target: d.u32()?,
                target_seq: d.u64()?,
                done: d.u8()? != 0,
                read_only: d.u8()? != 0,
                payload: d.bytes()?,
            })
        })?;
        let delivered = ExecutedSet::decode_from(&mut d, MAX_SNAPSHOT_ITEMS)?;
        let reply_routes = counted(&mut d, MAX_SNAPSHOT_ITEMS, snapshot_err, |d| {
            Ok((d.u32()?, d.u64()?, d.u32()?))
        })?;
        let replies_sent = counted(&mut d, MAX_SNAPSHOT_ITEMS, snapshot_err, |d| {
            Ok((d.u32()?, d.u64()?, d.bytes()?))
        })?;
        let resolved_tokens = counted(&mut d, MAX_SNAPSHOT_ITEMS, snapshot_err, |d| d.u64())?;
        d.finish()?;
        Ok(DriverSnapshot {
            next_call,
            next_token,
            next_target_seq,
            calls,
            delivered,
            reply_routes,
            replies_sent,
            resolved_tokens,
            executor,
        })
    }
}

/// Reads a `u32`-count-prefixed sequence: counts past `cap` are rejected
/// with `err` before anything is allocated, then `item` decodes each
/// element. Shared by every snapshot-layer codec (driver and host) so the
/// cap-then-read discipline lives in one place.
pub fn counted<T>(
    d: &mut Decoder<'_>,
    cap: usize,
    err: fn() -> WireError,
    mut item: impl FnMut(&mut Decoder<'_>) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let n = d.u32()? as usize;
    if n > cap {
        return Err(err());
    }
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(item(d)?);
    }
    Ok(out)
}

fn snapshot_err() -> WireError {
    WireError::malformed("malformed driver snapshot")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DriverSnapshot {
        DriverSnapshot {
            next_call: 7,
            next_token: 3,
            next_target_seq: vec![(2, 6)],
            calls: vec![
                CallSnap {
                    call_no: 1,
                    target: 2,
                    target_seq: 0,
                    done: true,
                    read_only: false,
                    payload: Bytes::from_static(b"req-1"),
                },
                CallSnap {
                    call_no: 5,
                    target: 2,
                    target_seq: 1,
                    done: false,
                    read_only: true,
                    payload: Bytes::from_static(b"req-5"),
                },
            ],
            delivered: [
                pws_clbft::RequestId::new(0, 1),
                pws_clbft::RequestId::new(0, 2),
            ]
            .into_iter()
            .collect(),
            reply_routes: vec![(0, 1, 3)],
            replies_sent: vec![(0, 1, Bytes::from_static(b"reply"))],
            resolved_tokens: vec![0, 1, 2],
            executor: Bytes::from_static(b"app-state"),
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(DriverSnapshot::decode(&bytes).unwrap(), s);
        let empty = DriverSnapshot::default();
        assert_eq!(DriverSnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn truncation_and_junk_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(DriverSnapshot::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(DriverSnapshot::decode(&long).is_err());
        assert!(DriverSnapshot::decode(&[9]).is_err(), "bad version");
        assert!(DriverSnapshot::decode(&[3]).is_err(), "v3 is not accepted");
    }

    #[test]
    fn executor_bytes_lead_the_encoding() {
        // The application snapshot sits at a fixed offset right after the
        // version byte and its length prefix, independent of how much
        // driver bookkeeping follows — that stability is what makes
        // incremental page hashing effective.
        let s = sample();
        let bytes = s.encode();
        let exec_start = 1 + 4; // version byte + u32 length prefix
        assert_eq!(
            &bytes[exec_start..exec_start + s.executor.len()],
            s.executor.as_ref()
        );
        let mut bigger = s.clone();
        bigger.resolved_tokens.extend(100..200);
        let bytes2 = bigger.encode();
        assert_eq!(
            &bytes2[exec_start..exec_start + s.executor.len()],
            s.executor.as_ref(),
            "trailing bookkeeping growth must not move the executor bytes"
        );
    }
}
