//! Property tests: for *any* placement of up to `f` faulty replicas in the
//! target group and any network jitter seed, a replicated caller completes
//! all calls with correct payloads, and all caller replicas agree.

use bytes::Bytes;
use proptest::prelude::*;
use pws_perpetual::{
    AppEvent, AppOutput, CostModel, Executor, FaultMode, GroupId, PerpetualReplica, ReplicaConfig,
    Topology,
};
use pws_simnet::{NodeId, SimTime, Simulation};
use std::sync::Arc;

struct Echo;
impl Executor for Echo {
    fn on_event(&mut self, ev: AppEvent, out: &mut AppOutput) {
        if let AppEvent::Request { handle, payload } = ev {
            let mut reply = b"ok:".to_vec();
            reply.extend_from_slice(&payload);
            out.reply(handle, Bytes::from(reply));
        }
    }
}

struct Caller {
    target: GroupId,
    count: u64,
    replies: Vec<(u64, Bytes)>,
}
impl Executor for Caller {
    fn on_event(&mut self, ev: AppEvent, out: &mut AppOutput) {
        match ev {
            AppEvent::Init { .. } => {
                for i in 0..self.count {
                    out.call(self.target, Bytes::from(format!("r{i}")), None);
                }
            }
            AppEvent::Reply { call, payload } => self.replies.push((call.0, payload)),
            _ => {}
        }
    }
}

fn run_with_fault(seed: u64, faulty_idx: u32, fault: FaultMode, calls: u64) {
    let mut sim = Simulation::new(seed);
    let mut topo = Topology::new();
    topo.register(GroupId(0), (0..4).map(NodeId::from_raw).collect());
    topo.register(GroupId(1), (4..8).map(NodeId::from_raw).collect());
    let topo = Arc::new(topo);
    for idx in 0..4 {
        let mut cfg = ReplicaConfig::new(GroupId(0), idx, topo.clone(), seed);
        cfg.cost = CostModel::FREE;
        sim.add_node(Box::new(PerpetualReplica::new(
            cfg,
            Box::new(Caller {
                target: GroupId(1),
                count: calls,
                replies: Vec::new(),
            }),
        )));
    }
    for idx in 0..4 {
        let mut cfg = ReplicaConfig::new(GroupId(1), idx, topo.clone(), seed);
        cfg.cost = CostModel::FREE;
        if idx == faulty_idx {
            cfg.fault = fault;
        }
        sim.add_node(Box::new(PerpetualReplica::new(cfg, Box::new(Echo))));
    }
    sim.run_until(SimTime::from_secs(60));

    let mut reference: Option<Vec<(u64, Bytes)>> = None;
    for raw in 0..4u32 {
        let node = NodeId::from_raw(raw);
        let replica = sim.node_mut::<PerpetualReplica>(node).unwrap();
        let caller = replica.executor_mut::<Caller>().unwrap();
        assert_eq!(
            caller.replies.len(),
            calls as usize,
            "caller replica {raw} (fault {fault:?} at target {faulty_idx}) missing replies"
        );
        for (_, payload) in &caller.replies {
            assert!(payload.starts_with(b"ok:"), "corrupted payload accepted");
        }
        match &reference {
            None => reference = Some(caller.replies.clone()),
            Some(r) => assert_eq!(&caller.replies, r, "caller replica {raw} diverged"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn any_single_fault_is_masked(
        seed in 1u64..10_000,
        faulty_idx in 0u32..4,
        fault_kind in 0u8..3,
        calls in 1u64..6,
    ) {
        let fault = match fault_kind {
            0 => FaultMode::Silent,
            1 => FaultMode::CorruptReplies,
            _ => FaultMode::EquivocatingResponder,
        };
        run_with_fault(seed, faulty_idx, fault, calls);
    }
}

#[test]
fn all_fault_kinds_at_every_position() {
    // Exhaustive over position × kind at a fixed seed (cheap and stable).
    for idx in 0..4 {
        for fault in [
            FaultMode::Silent,
            FaultMode::CorruptReplies,
            FaultMode::EquivocatingResponder,
        ] {
            run_with_fault(77, idx, fault, 3);
        }
    }
}
