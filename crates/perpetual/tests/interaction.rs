//! End-to-end tests of the Perpetual protocol on the simulated network:
//! replicated↔replicated and unreplicated↔replicated interaction, fault
//! injection, deterministic aborts, time votes, and run-to-run determinism.

use bytes::Bytes;
use pws_perpetual::{
    AppEvent, AppOutput, CallId, ClientCore, ClientEvent, CostModel, Executor, FaultMode, GroupId,
    PerpetualReplica, ReplicaConfig, RequestHandle, Topology,
};
use pws_simnet::{Context, Node, NodeId, SimDuration, SimTime, Simulation};
use std::sync::Arc;

// ---------------------------------------------------------------- executors

/// Replies to every request with `prefix ++ payload`.
struct Echo {
    prefix: &'static [u8],
    served: u64,
}

impl Echo {
    fn new(prefix: &'static [u8]) -> Self {
        Echo { prefix, served: 0 }
    }
}

impl Executor for Echo {
    fn on_event(&mut self, ev: AppEvent, out: &mut AppOutput) {
        if let AppEvent::Request { handle, payload } = ev {
            self.served += 1;
            let mut reply = self.prefix.to_vec();
            reply.extend_from_slice(&payload);
            out.reply(handle, Bytes::from(reply));
        }
    }
}

/// On Init, fires `count` calls at `target`; records replies/aborts.
struct Caller {
    target: GroupId,
    count: u64,
    timeout: Option<SimDuration>,
    replies: Vec<(CallId, Bytes)>,
    aborted: Vec<CallId>,
    times: Vec<(u64, u64)>,
    query_time_first: bool,
}

impl Caller {
    fn new(target: GroupId, count: u64) -> Self {
        Caller {
            target,
            count,
            timeout: None,
            replies: Vec::new(),
            aborted: Vec::new(),
            times: Vec::new(),
            query_time_first: false,
        }
    }
}

impl Executor for Caller {
    fn on_event(&mut self, ev: AppEvent, out: &mut AppOutput) {
        match ev {
            AppEvent::Init { .. } => {
                if self.query_time_first {
                    out.query_time();
                }
                for i in 0..self.count {
                    out.call(self.target, Bytes::from(format!("req-{i}")), self.timeout);
                }
            }
            AppEvent::Reply { call, payload } => self.replies.push((call, payload)),
            AppEvent::Aborted { call } => self.aborted.push(call),
            AppEvent::Time { token, millis } => self.times.push((token, millis)),
            AppEvent::Request { .. } => {}
        }
    }
}

// ------------------------------------------------------------------ harness

struct Deployment {
    sim: Simulation,
    groups: Vec<(GroupId, Vec<NodeId>)>,
}

/// Builds a deployment: for each entry `(n, make_executor, faults)` one
/// group of `n` replicas; faults lists per-replica fault modes.
type GroupSpec = (u32, Box<dyn Fn(u32) -> Box<dyn Executor>>, Vec<FaultMode>);

fn build(seed: u64, specs: Vec<GroupSpec>) -> Deployment {
    let mut sim = Simulation::new(seed);
    let mut topo = Topology::new();
    let mut next_node = 0u32;
    let mut groups = Vec::new();
    for (gi, (n, _, _)) in specs.iter().enumerate() {
        let nodes: Vec<NodeId> = (next_node..next_node + n).map(NodeId::from_raw).collect();
        next_node += n;
        topo.register(GroupId(gi as u32), nodes.clone());
        groups.push((GroupId(gi as u32), nodes));
    }
    let topo = Arc::new(topo);
    for (gi, (n, make, faults)) in specs.into_iter().enumerate() {
        for idx in 0..n {
            let mut cfg = ReplicaConfig::new(GroupId(gi as u32), idx, topo.clone(), seed);
            cfg.cost = CostModel::FREE;
            if let Some(f) = faults.get(idx as usize) {
                cfg.fault = *f;
            }
            let node = sim.add_node(Box::new(PerpetualReplica::new(cfg, make(idx))));
            assert_eq!(node, topo.node(GroupId(gi as u32), idx));
        }
    }
    Deployment { sim, groups }
}

fn correct(n: u32) -> Vec<FaultMode> {
    vec![FaultMode::Correct; n as usize]
}

fn caller_state(d: &mut Deployment, group: usize, idx: u32) -> &mut Caller {
    let node = d.groups[group].1[idx as usize];
    d.sim
        .node_mut::<PerpetualReplica>(node)
        .unwrap()
        .executor_mut::<Caller>()
        .unwrap()
}

// -------------------------------------------------------------------- tests

#[test]
fn replicated_caller_to_replicated_target() {
    for (nc, nt) in [(4u32, 4u32), (1, 4), (4, 1), (4, 7)] {
        let mut d = build(
            7,
            vec![
                (
                    nc,
                    Box::new(|_| Box::new(Caller::new(GroupId(1), 5)) as Box<dyn Executor>),
                    correct(nc),
                ),
                (
                    nt,
                    Box::new(|_| Box::new(Echo::new(b"ok:")) as Box<dyn Executor>),
                    correct(nt),
                ),
            ],
        );
        d.sim.run_until(SimTime::from_secs(30));
        for idx in 0..nc {
            let c = caller_state(&mut d, 0, idx);
            assert_eq!(c.replies.len(), 5, "nc={nc} nt={nt} replica {idx}");
            assert!(c.aborted.is_empty());
            let mut sorted: Vec<_> = c.replies.clone();
            sorted.sort_by_key(|(c, _)| *c);
            for (i, (call, payload)) in sorted.iter().enumerate() {
                assert_eq!(call.0, i as u64);
                assert_eq!(&payload[..], format!("ok:req-{i}").as_bytes());
            }
        }
        // All caller replicas saw the same reply order (determinism).
        let r0: Vec<_> = caller_state(&mut d, 0, 0).replies.clone();
        for idx in 1..nc {
            assert_eq!(caller_state(&mut d, 0, idx).replies, r0);
        }
    }
}

#[test]
fn target_group_tolerates_f_silent_replicas() {
    let faults = vec![
        FaultMode::Correct,
        FaultMode::Silent,
        FaultMode::Correct,
        FaultMode::Correct,
    ];
    let mut d = build(
        11,
        vec![
            (
                1,
                Box::new(|_| Box::new(Caller::new(GroupId(1), 3)) as Box<dyn Executor>),
                correct(1),
            ),
            (
                4,
                Box::new(|_| Box::new(Echo::new(b"ok:")) as Box<dyn Executor>),
                faults,
            ),
        ],
    );
    d.sim.run_until(SimTime::from_secs(30));
    let c = caller_state(&mut d, 0, 0);
    assert_eq!(c.replies.len(), 3);
}

#[test]
fn target_group_tolerates_f_corrupt_reply_replicas() {
    let faults = vec![
        FaultMode::CorruptReplies,
        FaultMode::Correct,
        FaultMode::Correct,
        FaultMode::Correct,
    ];
    let mut d = build(
        13,
        vec![
            (
                4,
                Box::new(|_| Box::new(Caller::new(GroupId(1), 3)) as Box<dyn Executor>),
                correct(4),
            ),
            (
                4,
                Box::new(|_| Box::new(Echo::new(b"ok:")) as Box<dyn Executor>),
                faults,
            ),
        ],
    );
    d.sim.run_until(SimTime::from_secs(30));
    for idx in 0..4 {
        let c = caller_state(&mut d, 0, idx);
        assert_eq!(c.replies.len(), 3, "replica {idx}");
        for (_, p) in &c.replies {
            assert!(p.starts_with(b"ok:"), "corrupted reply leaked through");
        }
    }
}

#[test]
fn compromised_target_group_triggers_deterministic_abort() {
    // The entire target group is silent (compromised beyond f): with a
    // timeout set, all caller replicas must abort the call deterministically
    // and agree on having done so. This is the fault-isolation guarantee.
    let mut d = build(
        17,
        vec![
            (
                4,
                Box::new(|_| {
                    let mut c = Caller::new(GroupId(1), 2);
                    c.timeout = Some(SimDuration::from_millis(500));
                    Box::new(c) as Box<dyn Executor>
                }),
                correct(4),
            ),
            (
                4,
                Box::new(|_| Box::new(Echo::new(b"ok:")) as Box<dyn Executor>),
                vec![FaultMode::Silent; 4],
            ),
        ],
    );
    d.sim.run_until(SimTime::from_secs(60));
    let a0: Vec<_> = {
        let c = caller_state(&mut d, 0, 0);
        assert!(c.replies.is_empty());
        assert_eq!(c.aborted.len(), 2, "both calls abort");
        c.aborted.clone()
    };
    for idx in 1..4 {
        let c = caller_state(&mut d, 0, idx);
        assert_eq!(c.aborted, a0, "replica {idx} aborted differently");
    }
}

#[test]
fn equivocating_responder_does_not_break_safety() {
    // Replica 0 of the target group equivocates when serving as responder:
    // it sends a valid bundle to some calling drivers and a corrupted one to
    // others. Because result proposals embed their bundle shares as proof,
    // any driver that received a valid bundle can convince the whole calling
    // group: every call completes, with the correct payload, identically at
    // every caller replica.
    let faults = vec![
        FaultMode::EquivocatingResponder,
        FaultMode::Correct,
        FaultMode::Correct,
        FaultMode::Correct,
    ];
    let mut d = build(
        19,
        vec![
            (
                4,
                Box::new(|_| {
                    let mut c = Caller::new(GroupId(1), 4);
                    c.timeout = Some(SimDuration::from_secs(5));
                    Box::new(c) as Box<dyn Executor>
                }),
                correct(4),
            ),
            (
                4,
                Box::new(|_| Box::new(Echo::new(b"ok:")) as Box<dyn Executor>),
                faults,
            ),
        ],
    );
    d.sim.run_until(SimTime::from_secs(60));
    let (r0, a0) = {
        let c = caller_state(&mut d, 0, 0);
        (c.replies.clone(), c.aborted.clone())
    };
    assert_eq!(r0.len() + a0.len(), 4, "every call resolves");
    for (_, p) in &r0 {
        assert!(p.starts_with(b"ok:"), "equivocated payload accepted");
    }
    for idx in 1..4 {
        let c = caller_state(&mut d, 0, idx);
        assert_eq!(c.replies, r0, "replica {idx} replies diverge");
        assert_eq!(c.aborted, a0, "replica {idx} aborts diverge");
    }
    assert_eq!(r0.len(), 4, "all calls complete despite the equivocator");
}

#[test]
fn time_votes_agree_across_replicas() {
    let mut d = build(
        23,
        vec![
            (
                4,
                Box::new(|_| {
                    let mut c = Caller::new(GroupId(1), 1);
                    c.query_time_first = true;
                    Box::new(c) as Box<dyn Executor>
                }),
                correct(4),
            ),
            (
                1,
                Box::new(|_| Box::new(Echo::new(b"ok:")) as Box<dyn Executor>),
                correct(1),
            ),
        ],
    );
    d.sim.run_until(SimTime::from_secs(30));
    let t0 = caller_state(&mut d, 0, 0).times.clone();
    assert_eq!(t0.len(), 1);
    assert!(t0[0].1 >= 1_190_000_000_000, "epoch offset applied");
    for idx in 1..4 {
        assert_eq!(caller_state(&mut d, 0, idx).times, t0, "replica {idx}");
    }
}

#[test]
fn unreplicated_client_core_calls_replicated_target() {
    struct ClientNode {
        core: ClientCore,
        target: GroupId,
        replies: Vec<Bytes>,
        want: u64,
    }
    impl Node for ClientNode {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.want {
                self.core
                    .call(ctx, self.target, Bytes::from_static(b"ping"));
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
            if let Some(ClientEvent::Reply { payload, .. }) = self.core.on_message(&msg, ctx) {
                self.replies.push(payload);
            }
        }
    }

    let seed = 29;
    let mut sim = Simulation::new(seed);
    let mut topo = Topology::new();
    let target_nodes: Vec<NodeId> = (0..4).map(NodeId::from_raw).collect();
    topo.register(GroupId(0), target_nodes);
    topo.register(GroupId(1), vec![NodeId::from_raw(4)]);
    let topo = Arc::new(topo);
    for idx in 0..4 {
        let mut cfg = ReplicaConfig::new(GroupId(0), idx, topo.clone(), seed);
        cfg.cost = CostModel::FREE;
        sim.add_node(Box::new(PerpetualReplica::new(
            cfg,
            Box::new(Echo::new(b"pong:")),
        )));
    }
    let client = sim.add_node(Box::new(ClientNode {
        core: ClientCore::new(GroupId(1), topo, seed, CostModel::FREE),
        target: GroupId(0),
        replies: Vec::new(),
        want: 10,
    }));
    sim.run_until(SimTime::from_secs(30));
    let c = sim.node_mut::<ClientNode>(client).unwrap();
    assert_eq!(c.replies.len(), 10);
    assert!(c.replies.iter().all(|p| &p[..] == b"pong:ping"));
    assert_eq!(c.core.outstanding(), 0);
}

#[test]
fn runs_are_bit_reproducible() {
    let run = |seed: u64| {
        let mut d = build(
            seed,
            vec![
                (
                    4,
                    Box::new(|_| Box::new(Caller::new(GroupId(1), 8)) as Box<dyn Executor>),
                    correct(4),
                ),
                (
                    4,
                    Box::new(|_| Box::new(Echo::new(b"ok:")) as Box<dyn Executor>),
                    correct(4),
                ),
            ],
        );
        d.sim.run_until(SimTime::from_secs(30));
        let replies = caller_state(&mut d, 0, 0).replies.clone();
        (d.sim.trace_digest().value(), replies)
    };
    let (d1, r1) = run(99);
    let (d2, r2) = run(99);
    assert_eq!(d1, d2, "same seed, same trace");
    assert_eq!(r1, r2);
    let (d3, r3) = run(100);
    assert_ne!(d1, d3, "different seed, different schedule");
    // A different schedule may deliver replies in a different order, but the
    // *set* of completed calls and their payloads must match.
    let norm = |rs: &[(CallId, Bytes)]| {
        let mut v: Vec<_> = rs.iter().map(|(c, p)| (c.0, p.clone())).collect();
        v.sort();
        v
    };
    assert_eq!(norm(&r1), norm(&r3));
}

#[test]
fn nested_tiers_compose() {
    // Three tiers: caller(4) -> middle(4) -> backend(1). The middle tier's
    // executor forwards each request to the backend and replies with the
    // backend's answer — the n-Tier scenario from the paper's title.
    struct Middle {
        backend: GroupId,
        waiting: Vec<(CallId, RequestHandle)>,
    }
    impl Executor for Middle {
        fn on_event(&mut self, ev: AppEvent, out: &mut AppOutput) {
            match ev {
                AppEvent::Request { handle, payload } => {
                    let call = out.call(self.backend, payload, None);
                    self.waiting.push((call, handle));
                }
                AppEvent::Reply { call, payload } => {
                    if let Some(pos) = self.waiting.iter().position(|(c, _)| *c == call) {
                        let (_, handle) = self.waiting.remove(pos);
                        let mut r = b"mid:".to_vec();
                        r.extend_from_slice(&payload);
                        out.reply(handle, Bytes::from(r));
                    }
                }
                _ => {}
            }
        }
    }

    let mut d = build(
        31,
        vec![
            (
                4,
                Box::new(|_| Box::new(Caller::new(GroupId(1), 4)) as Box<dyn Executor>),
                correct(4),
            ),
            (
                4,
                Box::new(|_| {
                    Box::new(Middle {
                        backend: GroupId(2),
                        waiting: Vec::new(),
                    }) as Box<dyn Executor>
                }),
                correct(4),
            ),
            (
                1,
                Box::new(|_| Box::new(Echo::new(b"be:")) as Box<dyn Executor>),
                correct(1),
            ),
        ],
    );
    d.sim.run_until(SimTime::from_secs(60));
    for idx in 0..4 {
        let c = caller_state(&mut d, 0, idx);
        assert_eq!(c.replies.len(), 4, "replica {idx}");
        for (i, (_, p)) in c.replies.iter().enumerate() {
            let _ = i;
            assert!(p.starts_with(b"mid:be:"), "payload was {:?}", p);
        }
    }
}

#[test]
fn self_call_aborts_deterministically() {
    let mut d = build(
        37,
        vec![(
            4,
            Box::new(|_| Box::new(Caller::new(GroupId(0), 1)) as Box<dyn Executor>),
            correct(4),
        )],
    );
    d.sim.run_until(SimTime::from_secs(5));
    for idx in 0..4 {
        let c = caller_state(&mut d, 0, idx);
        assert_eq!(c.aborted.len(), 1, "replica {idx}");
        assert!(c.replies.is_empty());
    }
}
