//! The [`Context`] handed to node handlers.

use crate::metrics::Metrics;
use crate::node::NodeId;
use crate::rng::DetRng;
use crate::sim::SimState;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use pws_obs::{FlightKind, Phase, SpanKey, TraceLevel, TOTAL_LATENCY_KEY};
use std::fmt;

/// Identifies a timer set with [`Context::set_timer`], scoped to one node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// The raw timer number (unique within a simulation).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// The capabilities a [`crate::Node`] handler has while it runs: sending
/// messages, setting timers, spending simulated CPU time, deterministic
/// randomness, and metrics.
pub struct Context<'a> {
    pub(crate) node: NodeId,
    pub(crate) state: &'a mut SimState,
    /// CPU time consumed so far within this handler invocation.
    pub(crate) elapsed: SimDuration,
}

impl<'a> Context<'a> {
    /// The current virtual time, including CPU time already spent in this
    /// handler invocation.
    pub fn now(&self) -> SimTime {
        self.state.now + self.elapsed
    }

    /// The id of the node whose handler is running.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to`. Delivery time follows the network model; the
    /// message may be lost if links are lossy, partitioned, or either end is
    /// crashed.
    pub fn send(&mut self, to: NodeId, msg: Bytes) {
        let depart = self.state.now + self.elapsed;
        self.state.send_message(self.node, to, msg, depart);
    }

    /// Consumes `d` of simulated CPU time. Subsequent deliveries to this
    /// node are deferred until the node is free again, so heavy handlers
    /// reduce the node's throughput exactly as a busy server would.
    pub fn spend(&mut self, d: SimDuration) {
        self.elapsed += d;
    }

    /// Sets a one-shot timer that fires after `delay` of virtual time.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerId {
        let at = self.state.now + self.elapsed + delay;
        self.state.set_timer(self.node, at)
    }

    /// Cancels a timer if it has not fired yet. Cancelling an already-fired
    /// or foreign timer is a no-op.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.state.cancel_timer(timer);
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut DetRng {
        self.state.node_rng(self.node)
    }

    /// The shared metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.state.metrics
    }

    /// Requests the simulation to stop after this handler returns.
    pub fn stop(&mut self) {
        self.state.stop = true;
    }

    /// The simulation's request-lifecycle tracing level. Protocol layers
    /// check this before assembling span identities so the disabled path
    /// costs one branch.
    pub fn trace_level(&self) -> TraceLevel {
        self.state.obs.level()
    }

    /// Records a request-lifecycle phase sighting for the span identified
    /// by `(group, origin, counter)`, stamped with the current sim-time.
    /// First sightings feed the per-phase latency histograms
    /// (`obs.phase.*_ms`) and, on a terminal phase, the whole-span
    /// histogram (`obs.lat.total_ms`). No-op when tracing is off.
    pub fn obs_phase(&mut self, group: u32, origin: u64, counter: u64, phase: Phase) {
        if !self.state.obs.level().spans_enabled() {
            return;
        }
        let at_us = (self.state.now + self.elapsed).as_micros();
        let key = SpanKey {
            group,
            origin,
            counter,
        };
        let deltas = self
            .state
            .obs
            .phase(key, phase, at_us, self.node.raw() as u64);
        if let Some(ms) = deltas.phase_ms {
            self.state.metrics.record_hist(phase.metric_key(), ms);
        }
        if let Some(ms) = deltas.total_ms {
            self.state.metrics.record_hist(TOTAL_LATENCY_KEY, ms);
        }
    }

    /// Records a protocol event into this node's flight ring. Always on
    /// (flight events are rare and the ring bounded).
    pub fn obs_flight(&mut self, kind: FlightKind, a: u64, b: u64) {
        let at_us = (self.state.now + self.elapsed).as_micros();
        self.state
            .obs
            .flight(self.node.raw() as u64, at_us, kind, a, b);
    }
}

impl fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("node", &self.node)
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}
