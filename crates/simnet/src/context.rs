//! The [`Context`] handed to node handlers.

use crate::metrics::Metrics;
use crate::node::NodeId;
use crate::rng::DetRng;
use crate::sim::SimState;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use pws_obs::{
    AuditEvent, AuditMode, FlightKind, Phase, ProtoFamily, ProtoKey, SpanKey, TraceLevel,
    AUDIT_VIOLATIONS_KEY, TOTAL_LATENCY_KEY,
};
use std::fmt;

/// Identifies a timer set with [`Context::set_timer`], scoped to one node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// The raw timer number (unique within a simulation).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// The capabilities a [`crate::Node`] handler has while it runs: sending
/// messages, setting timers, spending simulated CPU time, deterministic
/// randomness, and metrics.
pub struct Context<'a> {
    pub(crate) node: NodeId,
    pub(crate) state: &'a mut SimState,
    /// CPU time consumed so far within this handler invocation.
    pub(crate) elapsed: SimDuration,
}

impl<'a> Context<'a> {
    /// The current virtual time, including CPU time already spent in this
    /// handler invocation.
    pub fn now(&self) -> SimTime {
        self.state.now + self.elapsed
    }

    /// The id of the node whose handler is running.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to`. Delivery time follows the network model; the
    /// message may be lost if links are lossy, partitioned, or either end is
    /// crashed.
    pub fn send(&mut self, to: NodeId, msg: Bytes) {
        let depart = self.state.now + self.elapsed;
        self.state.send_message(self.node, to, msg, depart);
    }

    /// Consumes `d` of simulated CPU time. Subsequent deliveries to this
    /// node are deferred until the node is free again, so heavy handlers
    /// reduce the node's throughput exactly as a busy server would.
    pub fn spend(&mut self, d: SimDuration) {
        self.elapsed += d;
    }

    /// Sets a one-shot timer that fires after `delay` of virtual time.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerId {
        let at = self.state.now + self.elapsed + delay;
        self.state.set_timer(self.node, at)
    }

    /// Cancels a timer if it has not fired yet. Cancelling an already-fired
    /// or foreign timer is a no-op.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.state.cancel_timer(timer);
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut DetRng {
        self.state.node_rng(self.node)
    }

    /// The shared metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.state.metrics
    }

    /// Requests the simulation to stop after this handler returns.
    pub fn stop(&mut self) {
        self.state.stop = true;
    }

    /// The simulation's request-lifecycle tracing level. Protocol layers
    /// check this before assembling span identities so the disabled path
    /// costs one branch.
    pub fn trace_level(&self) -> TraceLevel {
        self.state.obs.level()
    }

    /// Records a request-lifecycle phase sighting for the span identified
    /// by `(group, origin, counter)`, stamped with the current sim-time.
    /// First sightings feed the per-phase latency histograms
    /// (`obs.phase.*_ms`) and, on a terminal phase, the whole-span
    /// histogram (`obs.lat.total_ms`). No-op when tracing is off.
    pub fn obs_phase(&mut self, group: u32, origin: u64, counter: u64, phase: Phase) {
        if !self.state.obs.level().spans_enabled() {
            return;
        }
        let at_us = (self.state.now + self.elapsed).as_micros();
        let key = SpanKey {
            group,
            origin,
            counter,
        };
        let deltas = self
            .state
            .obs
            .phase(key, phase, at_us, self.node.raw() as u64);
        if let Some(ms) = deltas.phase_ms {
            self.state.metrics.record_hist(phase.metric_key(), ms);
        }
        if let Some(ms) = deltas.total_ms {
            self.state.metrics.record_hist(TOTAL_LATENCY_KEY, ms);
        }
        if deltas.regressed {
            self.obs_audit(group, AuditEvent::PhaseRegression { origin, counter });
        }
    }

    /// Records a protocol-plane span phase (view change / checkpoint /
    /// state transfer / 2PC / reshard) for the span `(group, family, id)`,
    /// stamped with the current sim-time. `count` is an optional payload
    /// (e.g. pages fetched). First sightings feed the
    /// `obs.proto.<family>.<phase>_ms` histograms; view-change spans also
    /// maintain the `clbft.vc.{started,completed,abandoned}` counters.
    /// No-op when tracing is off.
    pub fn obs_proto(&mut self, key: ProtoKey, phase: usize, count: u64) {
        if !self.state.obs.level().spans_enabled() {
            return;
        }
        let at_us = (self.state.now + self.elapsed).as_micros();
        let deltas = self.state.obs.proto(key, phase, at_us, count);
        if let Some((mk, ms)) = deltas.metric {
            self.state.metrics.record_hist(mk, ms);
        }
        if key.family == ProtoFamily::Vc {
            if deltas.opened {
                self.state.metrics.incr("clbft.vc.started");
            }
            match deltas.closed {
                Some("installed") => self.state.metrics.incr("clbft.vc.completed"),
                Some("abandoned") => self.state.metrics.incr("clbft.vc.abandoned"),
                _ => {}
            }
            for &(_, ms) in &deltas.abandoned {
                self.state.metrics.incr("clbft.vc.abandoned");
                self.state
                    .metrics
                    .record_hist("obs.proto.vc.abandoned_ms", ms);
            }
        }
    }

    /// Whether the online protocol auditor is enabled (protocol layers
    /// check this before assembling audit events).
    pub fn audit_enabled(&self) -> bool {
        self.state.audit.is_some()
    }

    /// Feeds one protocol observation to the auditor (no-op when auditing
    /// is off). A violation bumps `obs.audit.violations`, captures a
    /// flight dump on first occurrence, and — in strict mode — panics,
    /// which the simulator surfaces as a node panic so test suites fail
    /// loudly.
    pub fn obs_audit(&mut self, group: u32, ev: AuditEvent) {
        let at_us = (self.state.now + self.elapsed).as_micros();
        let node = self.node.raw() as u64;
        let fired = match self.state.audit.as_mut() {
            Some(aud) => aud.ingest(group, node, at_us, ev),
            None => return,
        };
        if fired {
            self.state.metrics.incr(AUDIT_VIOLATIONS_KEY);
            if self.state.audit_dump.is_none() {
                self.state.audit_dump = Some(self.state.obs.dump_all_flight());
            }
            let aud = self.state.audit.as_ref().expect("just ingested");
            if aud.mode() == AuditMode::Strict {
                let last = aud
                    .violations()
                    .last()
                    .map(|v| v.to_string())
                    .unwrap_or_default();
                panic!("protocol audit violation: {last}");
            }
        }
    }

    /// Records a time-series gauge sample under `name`, stamped with the
    /// current sim-time (see [`Metrics::gauge`]).
    pub fn gauge(&mut self, name: &str, value: f64) {
        let t_us = (self.state.now + self.elapsed).as_micros();
        self.state.metrics.gauge(name, t_us, value);
    }

    /// Records a protocol event into this node's flight ring. Always on
    /// (flight events are rare and the ring bounded).
    pub fn obs_flight(&mut self, kind: FlightKind, a: u64, b: u64) {
        let at_us = (self.state.now + self.elapsed).as_micros();
        self.state
            .obs
            .flight(self.node.raw() as u64, at_us, kind, a, b);
    }
}

impl fmt::Debug for Context<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("node", &self.node)
            .field("now", &self.now())
            .finish_non_exhaustive()
    }
}
