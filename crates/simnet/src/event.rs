//! The internal event queue.

use crate::node::NodeId;
use crate::time::SimTime;
use bytes::Bytes;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
pub(crate) enum EventKind {
    Start,
    Deliver { from: NodeId, msg: Bytes },
    Timer { id: u64 },
}

#[derive(Debug)]
pub(crate) struct Event {
    pub at: SimTime,
    pub seq: u64,
    pub to: NodeId,
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. The seq tiebreak makes runs reproducible.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of pending events.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    pub fn push(&mut self, at: SimTime, to: NodeId, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, to, kind });
    }

    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(q: &mut EventQueue, at: u64, to: u32) {
        q.push(SimTime::from_micros(at), NodeId(to), EventKind::Start);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::default();
        ev(&mut q, 30, 0);
        ev(&mut q, 10, 1);
        ev(&mut q, 20, 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().to, NodeId(1));
        assert_eq!(q.pop().unwrap().to, NodeId(2));
        assert_eq!(q.pop().unwrap().to, NodeId(0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::default();
        for i in 0..100u32 {
            ev(&mut q, 5, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().to, NodeId(i));
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::default();
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        ev(&mut q, 42, 0);
        ev(&mut q, 7, 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }
}
