//! # pws-simnet
//!
//! A deterministic discrete-event simulator used as the execution substrate
//! for the Perpetual-WS reproduction. It stands in for the paper's physical
//! testbed (2 GHz Opterons on a Gigabit Ethernet with 78 µs pairwise RTTs).
//!
//! The simulator provides:
//!
//! * **Virtual time** ([`SimTime`], [`SimDuration`]) with microsecond
//!   resolution.
//! * **Nodes** ([`Node`]) that exchange opaque byte messages and set timers
//!   through a [`Context`].
//! * A **CPU cost model**: each node is a serial server; calling
//!   [`Context::spend`] occupies the node, deferring later deliveries. This
//!   is what makes simulated throughput saturate realistically.
//! * A **network model** ([`NetConfig`]): per-link base latency, per-byte
//!   cost, bounded deterministic jitter, message drop probability,
//!   partitions, and node crashes for fault-injection tests.
//! * **Metrics** ([`metrics::Metrics`]): counters and sample histograms used
//!   by the benchmark harnesses.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for how the
//! simulator slots into the full Perpetual-WS stack.
//!
//! Determinism: given the same master seed and the same sequence of API
//! calls, a simulation run is bit-for-bit reproducible. Event ties at equal
//! timestamps are broken by insertion sequence number.
//!
//! # Example
//!
//! ```
//! use pws_simnet::{Simulation, Node, Context, NodeId, SimDuration};
//! use bytes::Bytes;
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_message(&mut self, from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
//!         ctx.send(from, msg); // echo back
//!     }
//! }
//!
//! struct Pinger { peer: NodeId, got: usize }
//! impl Node for Pinger {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(self.peer, Bytes::from_static(b"ping"));
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: Bytes, ctx: &mut Context<'_>) {
//!         self.got += 1;
//!         ctx.stop();
//!     }
//! }
//!
//! let mut sim = Simulation::new(7);
//! let echo = sim.add_node(Box::new(Echo));
//! sim.add_node(Box::new(Pinger { peer: echo, got: 0 }));
//! sim.run();
//! assert!(sim.now().as_micros() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod event;
pub mod metrics;
mod net;
mod node;
mod rng;
mod sim;
mod time;
pub mod trace;

pub use context::{Context, TimerId};
pub use net::{LinkConfig, NetConfig};
pub use node::{Node, NodeId};
pub use rng::{splitmix64, DetRng};
pub use sim::{RunOutcome, Simulation};
pub use time::{SimDuration, SimTime};

// Observability vocabulary, re-exported so protocol crates and tests can
// speak it without depending on `pws-obs` directly.
pub use pws_obs::{
    escape_json, fmt_f64, AuditEvent, AuditMode, Auditor, FlightEvent, FlightKind, FlightRing,
    Histogram, Phase, ProtoFamily, ProtoKey, ProtoSpan, Recorder, Span, SpanKey, TraceLevel,
    Violation, AUDIT_VIOLATIONS_KEY,
};
