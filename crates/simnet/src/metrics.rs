//! Lightweight metrics used by tests and the benchmark harnesses.

use crate::time::SimDuration;
use pws_obs::Histogram;
use std::collections::{BTreeMap, VecDeque};

/// A registry of named counters, raw sample series, and fixed-bucket
/// histograms.
///
/// Raw samples ([`Metrics::sample`]) keep every value and are right for
/// short series a test wants to inspect exactly. Histograms
/// ([`Metrics::record_hist`]) keep O(1) memory per series with a
/// deterministic log-bucket layout and are right for hot-path latency
/// series that may see millions of values.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    samples: BTreeMap<String, Vec<f64>>,
    hists: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, GaugeRing>,
}

/// Default capacity of a [`GaugeRing`]: enough for the tail of a bench
/// run at one sample per ordered batch, fixed so memory never grows with
/// run length.
pub const DEFAULT_GAUGE_CAPACITY: usize = 4096;

/// A fixed-capacity time-series ring of `(t_us, value)` gauge samples.
///
/// Unlike a counter (monotone total) or a histogram (distribution without
/// time), a gauge ring answers *"what did this quantity look like over
/// time"* — queue depth, in-flight slots, lock-table size. Capacity is
/// fixed at creation; once full, the oldest sample is evicted, so the ring
/// deterministically holds the most recent `capacity` samples and
/// remembers how many it ever saw.
#[derive(Debug, Clone)]
pub struct GaugeRing {
    cap: usize,
    samples: VecDeque<(u64, f64)>,
    total: u64,
}

impl GaugeRing {
    /// An empty ring holding at most `cap` samples (min 1).
    pub fn new(cap: usize) -> Self {
        GaugeRing {
            cap: cap.max(1),
            samples: VecDeque::new(),
            total: 0,
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, t_us: u64, value: f64) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back((t_us, value));
        self.total += 1;
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the ring holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total samples ever pushed (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Iterates over the retained `(t_us, value)` samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.samples.back().copied()
    }

    /// Summary statistics over the retained values.
    pub fn summary(&self) -> Option<Summary> {
        let values: Vec<f64> = self.samples.iter().map(|&(_, v)| v).collect();
        Summary::of(&values)
    }
}

/// Pre-formatted metric keys for one [`Metrics::record_batch_with`] prefix.
///
/// `record_batch` formats three key strings per call; on hot paths
/// (per-ordered-batch) callers intern a `BatchKeys` once instead.
#[derive(Debug, Clone)]
pub struct BatchKeys {
    /// `<prefix>.batches` counter key.
    pub batches: String,
    /// `<prefix>.requests` counter key.
    pub requests: String,
    /// `<prefix>.occupancy` histogram key.
    pub occupancy: String,
}

impl BatchKeys {
    /// Interns the three keys for `prefix`.
    pub fn new(prefix: &str) -> Self {
        BatchKeys {
            batches: format!("{prefix}.batches"),
            requests: format!("{prefix}.requests"),
            occupancy: format!("{prefix}.occupancy"),
        }
    }
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `v` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += v;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// The current value of counter `name` (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a raw sample under `name`.
    pub fn sample(&mut self, name: &str, v: f64) {
        self.samples.entry(name.to_owned()).or_default().push(v);
    }

    /// Records a duration sample (in milliseconds) under `name`.
    pub fn sample_duration(&mut self, name: &str, d: SimDuration) {
        self.sample(name, d.as_micros() as f64 / 1000.0);
    }

    /// Records `v` into the histogram `name`, creating it if absent.
    pub fn record_hist(&mut self, name: &str, v: f64) {
        self.hists.entry(name.to_owned()).or_default().record(v);
    }

    /// The histogram recorded under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Summary statistics of the series recorded under `name`: raw samples
    /// if any exist, otherwise a histogram-backed summary (exact count /
    /// mean / min / max; bucket-approximate percentiles).
    pub fn summary(&self, name: &str) -> Option<Summary> {
        if let Some(xs) = self.samples.get(name) {
            return Summary::of(xs);
        }
        self.hists.get(name).and_then(Summary::of_histogram)
    }

    /// Number of values recorded under `name` (raw samples plus histogram
    /// entries).
    pub fn sample_count(&self, name: &str) -> usize {
        self.samples.get(name).map_or(0, Vec::len)
            + self.hists.get(name).map_or(0, |h| h.count() as usize)
    }

    /// Iterates over `(name, value)` for all counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over `(name, values)` for all raw sample series, sorted by
    /// name.
    pub fn samples(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.samples.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Iterates over `(name, histogram)` for all histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Records a gauge sample `(t_us, value)` into the ring `name`,
    /// creating it at [`DEFAULT_GAUGE_CAPACITY`] if absent.
    pub fn gauge(&mut self, name: &str, t_us: u64, value: f64) {
        self.gauges
            .entry(name.to_owned())
            .or_insert_with(|| GaugeRing::new(DEFAULT_GAUGE_CAPACITY))
            .push(t_us, value);
    }

    /// The gauge ring recorded under `name`, if any.
    pub fn gauge_ring(&self, name: &str) -> Option<&GaugeRing> {
        self.gauges.get(name)
    }

    /// The retained time series of gauge `name`, oldest first (empty
    /// iterator when the gauge was never written).
    pub fn timeseries(&self, name: &str) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.gauges.get(name).into_iter().flat_map(GaugeRing::iter)
    }

    /// Iterates over `(name, ring)` for all gauge rings, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &GaugeRing)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Summary statistics over the retained values of gauge `name`.
    pub fn gauge_summary(&self, name: &str) -> Option<Summary> {
        self.gauges.get(name).and_then(GaugeRing::summary)
    }

    /// Clears every counter, sample, histogram, and gauge ring (used
    /// between benchmark phases so a warm-up does not pollute
    /// measurements).
    pub fn reset(&mut self) {
        self.counters.clear();
        self.samples.clear();
        self.hists.clear();
        self.gauges.clear();
    }

    /// Records one ordered batch of `len` items under `prefix`: bumps
    /// `<prefix>.batches`, adds `len` to `<prefix>.requests`, and records
    /// the occupancy into the `<prefix>.occupancy` histogram. Benches and
    /// tests use this to assert batching actually engaged (via
    /// [`Metrics::mean_batch_occupancy`]) instead of inferring it from
    /// wall-clock.
    pub fn record_batch(&mut self, prefix: &str, len: usize) {
        self.record_batch_with(&BatchKeys::new(prefix), len);
    }

    /// Like [`Metrics::record_batch`] but with pre-interned keys, so the
    /// per-batch hot path does not re-`format!` three strings.
    pub fn record_batch_with(&mut self, keys: &BatchKeys, len: usize) {
        self.add(&keys.batches, 1);
        self.add(&keys.requests, len as u64);
        self.record_hist(&keys.occupancy, len as f64);
    }

    /// Number of batches recorded under `prefix` via
    /// [`Metrics::record_batch`].
    pub fn batches(&self, prefix: &str) -> u64 {
        self.counter(&format!("{prefix}.batches"))
    }

    /// Mean requests per batch recorded under `prefix`; `0.0` if no batch
    /// was ever recorded.
    pub fn mean_batch_occupancy(&self, prefix: &str) -> f64 {
        let batches = self.counter(&format!("{prefix}.batches"));
        if batches == 0 {
            return 0.0;
        }
        self.counter(&format!("{prefix}.requests")) as f64 / batches as f64
    }
}

/// Summary statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let pct = |p: f64| -> f64 {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        Some(Summary {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            max: *sorted.last().expect("nonempty"),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        })
    }

    /// Computes a summary from a histogram; returns `None` if empty. Count,
    /// mean, min, and max are exact; percentiles are bucket-approximate.
    pub fn of_histogram(h: &Histogram) -> Option<Summary> {
        if h.is_empty() {
            return None;
        }
        Some(Summary {
            count: h.count() as usize,
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
        let all: Vec<_> = m.counters().collect();
        assert_eq!(all, vec![("x", 5)]);
    }

    #[test]
    fn summary_percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        let m = Metrics::new();
        assert!(m.summary("missing").is_none());
    }

    #[test]
    fn duration_samples_in_millis() {
        let mut m = Metrics::new();
        m.sample_duration("lat", SimDuration::from_micros(2500));
        let s = m.summary("lat").unwrap();
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert_eq!(m.sample_count("lat"), 1);
    }

    #[test]
    fn batch_occupancy_tracks_mean_and_count() {
        let mut m = Metrics::new();
        assert_eq!(m.mean_batch_occupancy("clbft"), 0.0);
        assert_eq!(m.batches("clbft"), 0);
        m.record_batch("clbft", 1);
        m.record_batch("clbft", 16);
        m.record_batch("clbft", 7);
        assert_eq!(m.batches("clbft"), 3);
        assert_eq!(m.counter("clbft.requests"), 24);
        assert!((m.mean_batch_occupancy("clbft") - 8.0).abs() < 1e-9);
        let s = m.summary("clbft.occupancy").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 16.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("a");
        m.sample("b", 1.0);
        m.record_hist("c", 1.0);
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert_eq!(m.sample_count("b"), 0);
        assert!(m.histogram("c").is_none());
    }

    #[test]
    fn histograms_summarize_and_iterate() {
        let mut m = Metrics::new();
        for i in 1..=100 {
            m.record_hist("lat", i as f64);
        }
        let s = m.summary("lat").unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        // Bucket-approximate percentiles: within the ~6% bucket width.
        assert!((s.p50 - 50.0).abs() <= 4.0, "p50={}", s.p50);
        assert!((s.p95 - 95.0).abs() <= 7.0, "p95={}", s.p95);
        assert_eq!(m.sample_count("lat"), 100);
        let names: Vec<&str> = m.histograms().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["lat"]);
        assert!(m.samples().next().is_none());
    }

    #[test]
    fn gauge_ring_is_bounded_and_ordered() {
        let mut r = GaugeRing::new(3);
        for i in 0..5u64 {
            r.push(i * 100, i as f64);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.total_recorded(), 5);
        let kept: Vec<_> = r.iter().collect();
        assert_eq!(kept, vec![(200, 2.0), (300, 3.0), (400, 4.0)]);
        assert_eq!(r.last(), Some((400, 4.0)));
        let s = r.summary().unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn metrics_gauges_timeseries_and_summary() {
        let mut m = Metrics::new();
        assert!(m.timeseries("q").next().is_none());
        assert!(m.gauge_summary("q").is_none());
        for i in 1..=10u64 {
            m.gauge("q", i * 1000, i as f64);
        }
        assert_eq!(m.timeseries("q").count(), 10);
        assert_eq!(
            m.gauge_ring("q").unwrap().capacity(),
            DEFAULT_GAUGE_CAPACITY
        );
        let s = m.gauge_summary("q").unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        let names: Vec<&str> = m.gauges().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["q"]);
        m.reset();
        assert!(m.gauge_ring("q").is_none());
    }

    #[test]
    fn batch_keys_match_record_batch() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        let keys = BatchKeys::new("clbft");
        a.record_batch("clbft", 5);
        b.record_batch_with(&keys, 5);
        assert_eq!(a.batches("clbft"), b.batches("clbft"));
        assert_eq!(a.counter("clbft.requests"), b.counter("clbft.requests"));
        assert_eq!(
            a.summary("clbft.occupancy").unwrap(),
            b.summary("clbft.occupancy").unwrap()
        );
    }
}
