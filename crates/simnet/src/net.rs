//! The network model.
//!
//! Latency of a message of `len` bytes from `a` to `b` is
//! `base + len * per_byte + U[0, jitter)`, where the jitter draw comes from
//! the simulation's dedicated network RNG stream. Defaults approximate the
//! paper's testbed: a Gigabit Ethernet with 78 µs pairwise ping RTTs, i.e.
//! 39 µs one-way.

use crate::node::NodeId;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// A scheduled *flapping* partition between two nodes: starting at
/// `start`, the (bidirectional) link is severed for `down`, healed for
/// `up`, severed again, and so on. The schedule is purely a function of
/// virtual time, so fault injection stays deterministic — the same seed
/// sees the same messages lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flap {
    a: NodeId,
    b: NodeId,
    start: SimTime,
    down: SimDuration,
    up: SimDuration,
}

impl Flap {
    /// Whether the link is in a severed phase at `now`.
    fn severed_at(&self, now: SimTime) -> bool {
        if now < self.start {
            return false;
        }
        let period = (self.down + self.up).as_micros().max(1);
        (now.as_micros() - self.start.as_micros()) % period < self.down.as_micros()
    }

    fn covers(&self, from: NodeId, to: NodeId) -> bool {
        (self.a == from && self.b == to) || (self.a == to && self.b == from)
    }
}

/// Latency/reliability parameters for a single directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Fixed one-way latency.
    pub base: SimDuration,
    /// Serialization cost per payload byte, in microseconds.
    pub per_byte_us: f64,
    /// Maximum uniform jitter added to each message.
    pub jitter: SimDuration,
    /// Probability in `[0,1]` that a message is silently dropped.
    pub drop_probability: f64,
}

impl LinkConfig {
    /// A perfectly reliable zero-latency link (useful in unit tests).
    pub const IDEAL: LinkConfig = LinkConfig {
        base: SimDuration::ZERO,
        per_byte_us: 0.0,
        jitter: SimDuration::ZERO,
        drop_probability: 0.0,
    };
}

impl Default for LinkConfig {
    /// The paper's LAN: 39 µs one-way, ~1 Gbit/s (0.008 µs/byte), small
    /// jitter, no losses.
    fn default() -> Self {
        LinkConfig {
            base: SimDuration::from_micros(39),
            per_byte_us: 0.008,
            jitter: SimDuration::from_micros(6),
            drop_probability: 0.0,
        }
    }
}

/// Network-wide configuration: a default link plus per-pair overrides,
/// partitions, and crashed nodes.
#[derive(Debug, Default)]
pub struct NetConfig {
    default_link: LinkConfig,
    overrides: HashMap<(NodeId, NodeId), LinkConfig>,
    /// Loopback delivery latency (co-located voter/driver messages and
    /// self-sends); models a local queue hand-off.
    local: SimDuration,
    partitioned: HashSet<(NodeId, NodeId)>,
    flaps: Vec<Flap>,
    crashed: HashSet<NodeId>,
}

impl NetConfig {
    /// Creates a network with the given default link for every pair.
    pub fn new(default_link: LinkConfig) -> Self {
        NetConfig {
            default_link,
            overrides: HashMap::new(),
            local: SimDuration::from_micros(1),
            partitioned: HashSet::new(),
            flaps: Vec::new(),
            crashed: HashSet::new(),
        }
    }

    /// The default link parameters.
    pub fn default_link(&self) -> LinkConfig {
        self.default_link
    }

    /// Sets the latency for self-sends (local hand-off).
    pub fn set_local_latency(&mut self, d: SimDuration) {
        self.local = d;
    }

    /// Overrides the link parameters for the directed pair `(from, to)`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, link: LinkConfig) {
        self.overrides.insert((from, to), link);
    }

    /// Severs the directed pair `(from, to)` (messages are dropped).
    pub fn partition(&mut self, from: NodeId, to: NodeId) {
        self.partitioned.insert((from, to));
    }

    /// Severs both directions between `a` and `b`.
    pub fn partition_both(&mut self, a: NodeId, b: NodeId) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Heals the directed pair `(from, to)`.
    pub fn heal(&mut self, from: NodeId, to: NodeId) {
        self.partitioned.remove(&(from, to));
    }

    /// Heals every partition and cancels every flap schedule.
    pub fn heal_all(&mut self) {
        self.partitioned.clear();
        self.flaps.clear();
    }

    /// Schedules a *flapping* partition between `a` and `b` (both
    /// directions): from `start`, the link is severed for `down`, healed
    /// for `up`, severed again, and so on until [`NetConfig::clear_flaps`]
    /// (or [`NetConfig::heal_all`]). Deterministic: purely a function of
    /// virtual time. This is the churniest partition fault — protocols
    /// must survive links that come back just long enough to leak partial
    /// quorums.
    pub fn flap_partition_both(
        &mut self,
        a: NodeId,
        b: NodeId,
        start: SimTime,
        down: SimDuration,
        up: SimDuration,
    ) {
        self.flaps.push(Flap {
            a,
            b,
            start,
            down,
            up,
        });
    }

    /// Cancels every flap schedule (static partitions stay).
    pub fn clear_flaps(&mut self) {
        self.flaps.clear();
    }

    /// Whether any flap schedule currently severs `from → to` at `now`.
    pub fn flap_severed(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        self.flaps
            .iter()
            .any(|f| f.covers(from, to) && f.severed_at(now))
    }

    /// Marks a node as crashed: it receives nothing and its messages vanish.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Restarts a crashed node (state is whatever the `Node` value holds).
    pub fn restart(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Computes the delivery latency for a message, or `None` if the message
    /// is lost (drop, partition, or crash).
    pub(crate) fn latency(
        &self,
        from: NodeId,
        to: NodeId,
        len: usize,
        now: SimTime,
        rng: &mut DetRng,
    ) -> Option<SimDuration> {
        if self.crashed.contains(&from) || self.crashed.contains(&to) {
            return None;
        }
        if from == to {
            return Some(self.local);
        }
        if self.partitioned.contains(&(from, to)) {
            return None;
        }
        if !self.flaps.is_empty() && self.flap_severed(from, to, now) {
            return None;
        }
        let link = self
            .overrides
            .get(&(from, to))
            .unwrap_or(&self.default_link);
        if link.drop_probability > 0.0 && rng.unit() < link.drop_probability {
            return None;
        }
        let bytes_us = (len as f64 * link.per_byte_us).round() as u64;
        let jitter = SimDuration::from_micros(rng.below(link.jitter.as_micros().max(1)));
        let jitter = if link.jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            jitter
        };
        Some(link.base + SimDuration::from_micros(bytes_us) + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (NodeId, NodeId) {
        (NodeId(0), NodeId(1))
    }

    #[test]
    fn ideal_link_has_zero_latency() {
        let net = NetConfig::new(LinkConfig::IDEAL);
        let mut rng = DetRng::derive(0, 0);
        let (a, b) = ids();
        assert_eq!(
            net.latency(a, b, 100, SimTime::ZERO, &mut rng),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn default_link_matches_paper_lan() {
        let link = LinkConfig::default();
        assert_eq!(link.base.as_micros(), 39, "one-way = RTT/2 = 39us");
    }

    #[test]
    fn per_byte_cost_applies() {
        let mut link = LinkConfig::IDEAL;
        link.per_byte_us = 0.5;
        let net = NetConfig::new(link);
        let mut rng = DetRng::derive(0, 0);
        let (a, b) = ids();
        assert_eq!(
            net.latency(a, b, 100, SimTime::ZERO, &mut rng),
            Some(SimDuration::from_micros(50))
        );
    }

    #[test]
    fn partition_blocks_one_direction() {
        let mut net = NetConfig::new(LinkConfig::IDEAL);
        let (a, b) = ids();
        net.partition(a, b);
        let mut rng = DetRng::derive(0, 0);
        assert!(net.latency(a, b, 0, SimTime::ZERO, &mut rng).is_none());
        assert!(net.latency(b, a, 0, SimTime::ZERO, &mut rng).is_some());
        net.heal(a, b);
        assert!(net.latency(a, b, 0, SimTime::ZERO, &mut rng).is_some());
    }

    #[test]
    fn crash_blocks_both_directions() {
        let mut net = NetConfig::new(LinkConfig::IDEAL);
        let (a, b) = ids();
        net.crash(b);
        assert!(net.is_crashed(b));
        let mut rng = DetRng::derive(0, 0);
        assert!(net.latency(a, b, 0, SimTime::ZERO, &mut rng).is_none());
        assert!(net.latency(b, a, 0, SimTime::ZERO, &mut rng).is_none());
        net.restart(b);
        assert!(net.latency(a, b, 0, SimTime::ZERO, &mut rng).is_some());
    }

    #[test]
    fn drops_follow_probability() {
        let mut link = LinkConfig::IDEAL;
        link.drop_probability = 0.5;
        let net = NetConfig::new(link);
        let mut rng = DetRng::derive(1, 2);
        let (a, b) = ids();
        let delivered = (0..2000)
            .filter(|_| net.latency(a, b, 0, SimTime::ZERO, &mut rng).is_some())
            .count();
        assert!((800..1200).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn self_send_uses_local_latency() {
        let mut net = NetConfig::new(LinkConfig::default());
        net.set_local_latency(SimDuration::from_micros(2));
        let mut rng = DetRng::derive(0, 0);
        let a = NodeId(5);
        assert_eq!(
            net.latency(a, a, 10_000, SimTime::ZERO, &mut rng),
            Some(SimDuration::from_micros(2))
        );
    }

    #[test]
    fn link_override_applies() {
        let mut net = NetConfig::new(LinkConfig::IDEAL);
        let (a, b) = ids();
        net.set_link(
            a,
            b,
            LinkConfig {
                base: SimDuration::from_millis(10),
                per_byte_us: 0.0,
                jitter: SimDuration::ZERO,
                drop_probability: 0.0,
            },
        );
        let mut rng = DetRng::derive(0, 0);
        assert_eq!(
            net.latency(a, b, 0, SimTime::ZERO, &mut rng),
            Some(SimDuration::from_millis(10))
        );
        assert_eq!(
            net.latency(b, a, 0, SimTime::ZERO, &mut rng),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn flap_schedule_alternates_down_and_up_phases() {
        let mut net = NetConfig::new(LinkConfig::IDEAL);
        let (a, b) = ids();
        // From t=1ms: down 2ms, up 3ms, period 5ms.
        net.flap_partition_both(
            a,
            b,
            SimTime::from_millis(1),
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        );
        let mut rng = DetRng::derive(0, 0);
        let up = |net: &NetConfig, t_ms: u64, rng: &mut DetRng| {
            net.latency(a, b, 0, SimTime::from_millis(t_ms), rng)
                .is_some()
        };
        assert!(up(&net, 0, &mut rng), "before start the link is healthy");
        assert!(!up(&net, 1, &mut rng), "down phase begins at start");
        assert!(!up(&net, 2, &mut rng));
        assert!(up(&net, 3, &mut rng), "up phase after `down` elapses");
        assert!(up(&net, 5, &mut rng));
        assert!(!up(&net, 6, &mut rng), "next period severs again");
        assert!(up(&net, 8, &mut rng));
        // Both directions flap; unrelated pairs are untouched.
        assert!(net
            .latency(b, a, 0, SimTime::from_millis(1), &mut rng)
            .is_none());
        assert!(net
            .latency(a, NodeId(9), 0, SimTime::from_millis(1), &mut rng)
            .is_some());
        assert!(net.flap_severed(a, b, SimTime::from_millis(1)));
        net.clear_flaps();
        assert!(up(&net, 1, &mut rng), "cleared flaps heal the link");
    }

    #[test]
    fn heal_all_cancels_flaps_too() {
        let mut net = NetConfig::new(LinkConfig::IDEAL);
        let (a, b) = ids();
        net.flap_partition_both(
            a,
            b,
            SimTime::ZERO,
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
        );
        let mut rng = DetRng::derive(0, 0);
        assert!(net.latency(a, b, 0, SimTime::ZERO, &mut rng).is_none());
        net.heal_all();
        assert!(net.latency(a, b, 0, SimTime::ZERO, &mut rng).is_some());
    }
}
