//! The [`Node`] trait and node identifiers.

use crate::context::{Context, TimerId};
use bytes::Bytes;
use std::fmt;

/// Identifies a node (a simulated host) within one [`crate::Simulation`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from its raw index.
    ///
    /// Normally ids are obtained from [`crate::Simulation::add_node`]; this
    /// constructor exists for tables that must be built before the node, such
    /// as replica-group topologies.
    pub const fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index of this node.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A simulated host.
///
/// Handlers run to completion at a single virtual instant (plus any CPU time
/// added with [`Context::spend`]); there is no intra-node concurrency, which
/// mirrors the single-threaded application model of the paper (§4.1).
///
/// The `Any` supertrait enables typed access to nodes after a run via
/// [`crate::Simulation::node_mut`].
pub trait Node: std::any::Any {
    /// Called once when the simulation starts (or when the node is added to a
    /// running simulation).
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, from: NodeId, msg: Bytes, ctx: &mut Context<'_>);

    /// Called when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_>) {
        let _ = (timer, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_debug_and_raw() {
        let id = NodeId::from_raw(3);
        assert_eq!(id.raw(), 3);
        assert_eq!(format!("{id:?}"), "n3");
        assert_eq!(id.to_string(), "n3");
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
    }
}
