//! Deterministic random number generation.
//!
//! Each node gets its own [`DetRng`] derived from the simulation master seed
//! and the node id, so adding a node never perturbs the random streams of
//! existing nodes. The network layer has a separate stream for jitter and
//! drop decisions.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The SplitMix64 increment ("golden gamma").
const SPLITMIX64_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One-shot SplitMix64 step: advances `z` by the golden gamma and applies
/// the avalanche finalizer. The workspace's canonical 64-bit mixer —
/// [`DetRng::derive`] builds seed material from it and the shard router
/// decorrelates rendezvous claims with it — kept in one place so the
/// constants can never silently diverge.
pub fn splitmix64(z: u64) -> u64 {
    let mut x = z.wrapping_add(SPLITMIX64_GAMMA);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic RNG stream, derived from a master seed and a stream label.
#[derive(Debug)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Derives a stream from `master` and a `stream` label.
    ///
    /// The derivation is a simple SplitMix64-style mix so distinct labels
    /// yield statistically independent streams.
    pub fn derive(master: u64, stream: u64) -> Self {
        let mut z = master ^ stream.wrapping_mul(SPLITMIX64_GAMMA);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            let x = splitmix64(z);
            z = z.wrapping_add(SPLITMIX64_GAMMA);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        DetRng {
            inner: StdRng::from_seed(seed),
        }
    }

    /// A uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniformly random value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.inner.gen_range(0..bound)
        }
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// An exponentially distributed value with the given mean (for think
    /// times, per TPC-W).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::derive(42, 3);
        let mut b = DetRng::derive(42, 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = DetRng::derive(42, 3);
        let mut b = DetRng::derive(42, 4);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be effectively independent");
    }

    #[test]
    fn below_is_bounded() {
        let mut r = DetRng::derive(1, 1);
        assert_eq!(r.below(0), 0);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn exponential_has_roughly_right_mean() {
        let mut r = DetRng::derive(9, 9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.3, "mean was {mean}");
    }

    #[test]
    fn unit_in_range() {
        let mut r = DetRng::derive(5, 5);
        for _ in 0..100 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
