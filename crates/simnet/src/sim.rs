//! The simulation engine.

use crate::context::{Context, TimerId};
use crate::event::{EventKind, EventQueue};
use crate::metrics::Metrics;
use crate::net::NetConfig;
use crate::node::{Node, NodeId};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceDigest;
use bytes::Bytes;
use pws_obs::{AuditMode, Auditor, FlightKind, Recorder, TraceLevel};
use std::any::Any;
use std::collections::HashSet;

/// Why a call to [`Simulation::run`]/[`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Quiescent,
    /// A handler called [`Context::stop`].
    Stopped,
    /// The deadline passed (only from [`Simulation::run_until`] /
    /// [`Simulation::run_for`]).
    DeadlineReached,
    /// The event budget was exhausted (runaway-protection).
    BudgetExhausted,
    /// A node handler panicked. The simulation is poisoned: the panicking
    /// node is dropped and every subsequent `run_*` call returns this same
    /// outcome. [`Simulation::panic_message`] carries the payload. A bug in
    /// deterministic application code would hit every replica identically,
    /// so it surfaces as a simulation failure instead of Byzantine noise —
    /// and never as a hang.
    NodePanicked {
        /// The node whose handler panicked.
        node: NodeId,
    },
}

/// Mutable simulation state shared with running handlers via [`Context`].
pub(crate) struct SimState {
    pub now: SimTime,
    pub queue: EventQueue,
    pub net: NetConfig,
    node_rngs: Vec<DetRng>,
    net_rng: DetRng,
    pub metrics: Metrics,
    next_timer: u64,
    cancelled: HashSet<u64>,
    pub stop: bool,
    master_seed: u64,
    pub trace: TraceDigest,
    /// Observability side channel (spans + flight recorder). Never consulted
    /// by the scheduler: recording cannot perturb the trace digest.
    pub obs: Recorder,
    /// Opt-in online protocol invariant auditor — like the recorder, a
    /// pure consumer of the event stream.
    pub audit: Option<Auditor>,
    /// Flight dump captured at the first audit violation.
    pub audit_dump: Option<String>,
}

impl SimState {
    pub fn send_message(&mut self, from: NodeId, to: NodeId, msg: Bytes, depart: SimTime) {
        self.metrics.add("net.bytes_sent", msg.len() as u64);
        self.metrics.incr("net.messages_sent");
        match self
            .net
            .latency(from, to, msg.len(), depart, &mut self.net_rng)
        {
            Some(lat) => {
                self.queue
                    .push(depart + lat, to, EventKind::Deliver { from, msg });
            }
            None => {
                self.metrics.incr("net.messages_lost");
            }
        }
    }

    pub fn set_timer(&mut self, node: NodeId, at: SimTime) -> TimerId {
        let id = self.next_timer;
        self.next_timer += 1;
        self.queue.push(at, node, EventKind::Timer { id });
        TimerId(id)
    }

    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.cancelled.insert(timer.0);
    }

    pub fn node_rng(&mut self, node: NodeId) -> &mut DetRng {
        &mut self.node_rngs[node.0 as usize]
    }
}

/// A deterministic discrete-event simulation.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Simulation {
    nodes: Vec<Option<Box<dyn Node>>>,
    busy_until: Vec<SimTime>,
    state: SimState,
    event_budget: u64,
    /// Set once a node handler panics; poisons all subsequent runs.
    panicked: Option<(NodeId, String)>,
    /// The panicking node's flight-recorder dump, captured at panic time.
    flight_dump: Option<String>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("now", &self.state.now)
            .field("pending_events", &self.state.queue.len())
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation with the default (paper-LAN) network and the
    /// given master seed.
    pub fn new(master_seed: u64) -> Self {
        Simulation::with_net(master_seed, NetConfig::new(Default::default()))
    }

    /// Creates a simulation with an explicit network configuration.
    pub fn with_net(master_seed: u64, net: NetConfig) -> Self {
        Simulation {
            nodes: Vec::new(),
            busy_until: Vec::new(),
            state: SimState {
                now: SimTime::ZERO,
                queue: EventQueue::default(),
                net,
                node_rngs: Vec::new(),
                net_rng: DetRng::derive(master_seed, u64::MAX),
                metrics: Metrics::new(),
                next_timer: 0,
                cancelled: HashSet::new(),
                stop: false,
                master_seed,
                trace: TraceDigest::new(),
                obs: Recorder::new(),
                audit: None,
                audit_dump: None,
            },
            event_budget: u64::MAX,
            panicked: None,
            flight_dump: None,
        }
    }

    /// Sets the request-lifecycle tracing level (default
    /// [`TraceLevel::Off`]). The flight recorder is always on.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.state.obs.set_level(level);
    }

    /// The current tracing level.
    pub fn trace_level(&self) -> TraceLevel {
        self.state.obs.level()
    }

    /// The observability recorder (spans, per-phase timings, flight rings).
    pub fn obs(&self) -> &Recorder {
        &self.state.obs
    }

    /// Mutable access to the observability recorder (e.g. to resize flight
    /// rings or export traces).
    pub fn obs_mut(&mut self) -> &mut Recorder {
        &mut self.state.obs
    }

    /// Enables the online protocol auditor in the given mode (or disables
    /// it with `None`). Like the recorder, the auditor only observes — it
    /// cannot perturb the trace digest ([`AuditMode::Strict`] panics on a
    /// violation, but a violation means the protocol already broke).
    pub fn set_auditor(&mut self, mode: Option<AuditMode>) {
        self.state.audit = mode.map(Auditor::new);
        self.state.audit_dump = None;
    }

    /// The protocol auditor, if enabled.
    pub fn auditor(&self) -> Option<&Auditor> {
        self.state.audit.as_ref()
    }

    /// Mutable access to the auditor (e.g. to register group fault
    /// bounds).
    pub fn auditor_mut(&mut self) -> Option<&mut Auditor> {
        self.state.audit.as_mut()
    }

    /// The flight dump captured at the first audit violation, if any.
    pub fn audit_dump(&self) -> Option<&str> {
        self.state.audit_dump.as_deref()
    }

    /// The flight-recorder dump captured when a node panicked, if any.
    pub fn flight_dump(&self) -> Option<&str> {
        self.flight_dump.as_deref()
    }

    /// The payload of the node panic that poisoned this simulation, if any.
    pub fn panic_message(&self) -> Option<&str> {
        self.panicked.as_ref().map(|(_, m)| m.as_str())
    }

    /// Caps the total number of processed events (protection against
    /// protocol livelock in property tests).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Registers a node and schedules its `on_start` at the current time.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.busy_until.push(SimTime::ZERO);
        self.state
            .node_rngs
            .push(DetRng::derive(self.state.master_seed, id.0 as u64));
        self.state.queue.push(self.state.now, id, EventKind::Start);
        id
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.state.now
    }

    /// The network configuration (for partitions/crashes mid-run).
    pub fn net_mut(&mut self) -> &mut NetConfig {
        &mut self.state.net
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Mutable access to the metrics registry (e.g. to reset after warm-up).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.state.metrics
    }

    /// The rolling digest of every delivery and timer processed so far.
    pub fn trace_digest(&self) -> TraceDigest {
        self.state.trace
    }

    /// Typed access to a node, for assertions in tests and harvesting
    /// results after a run. Returns `None` if the id is unknown or the
    /// concrete type does not match.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        let slot = self.nodes.get_mut(id.0 as usize)?.as_mut()?;
        let any: &mut dyn Any = slot.as_mut();
        any.downcast_mut::<T>()
    }

    /// Injects a message from `from` to `to` as if `from` had sent it now.
    /// Useful for driving protocols from test code without a dedicated node.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: Bytes) {
        let now = self.state.now;
        self.state.send_message(from, to, msg, now);
    }

    /// Runs until the queue is empty or a handler stops the simulation.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs for an additional `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) -> RunOutcome {
        let deadline = self.state.now + d;
        self.run_until(deadline)
    }

    /// Runs until `deadline` (inclusive), the queue drains, or a handler
    /// stops the simulation. On deadline return, `now()` equals `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        loop {
            if let Some((node, _)) = self.panicked {
                return RunOutcome::NodePanicked { node };
            }
            if self.state.stop {
                self.state.stop = false;
                return RunOutcome::Stopped;
            }
            if self.event_budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            match self.state.queue.peek_time() {
                None => {
                    if deadline != SimTime::MAX {
                        self.state.now = deadline;
                    }
                    return RunOutcome::Quiescent;
                }
                Some(t) if t > deadline => {
                    self.state.now = deadline;
                    return RunOutcome::DeadlineReached;
                }
                Some(_) => {}
            }
            let ev = self.state.queue.pop().expect("peeked nonempty");
            self.event_budget -= 1;
            let to = ev.to;
            let idx = to.0 as usize;

            // Messages to unregistered nodes vanish (e.g. replies to a
            // synthetic sender used by `inject`), as do messages to crashed
            // nodes.
            if idx >= self.nodes.len() || self.state.net.is_crashed(to) {
                continue;
            }

            // Serial-server CPU model: if the node is still busy, defer.
            let busy = self.busy_until[idx];
            if busy > ev.at {
                self.state.queue.push(busy, to, ev.kind);
                continue;
            }
            self.state.now = ev.at;

            // Dropped cancelled timers.
            if let EventKind::Timer { id } = ev.kind {
                if self.state.cancelled.remove(&id) {
                    continue;
                }
            }

            let mut node = match self.nodes[idx].take() {
                Some(n) => n,
                None => continue, // node currently running?? (impossible: serial)
            };
            let mut ctx = Context {
                node: to,
                state: &mut self.state,
                elapsed: SimDuration::ZERO,
            };
            // A panicking handler surfaces as a simulation failure (never a
            // hang): the node is dropped and the run poisoned.
            let dispatch =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match ev.kind {
                    EventKind::Start => node.on_start(&mut ctx),
                    EventKind::Deliver { from, msg } => {
                        ctx.state.trace.record_delivery(ev.at, from, to, &msg);
                        ctx.state.metrics.incr("net.messages_delivered");
                        node.on_message(from, msg, &mut ctx);
                    }
                    EventKind::Timer { id } => {
                        ctx.state.trace.record_timer(ev.at, to, id);
                        node.on_timer(TimerId(id), &mut ctx);
                    }
                }));
            let spent = ctx.elapsed;
            if let Err(payload) = dispatch {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                drop(node); // the node's state is broken; leave the slot empty
                            // Black-box moment: record the panic in the node's flight
                            // ring and capture its dump so the post-mortem has the
                            // replica's last protocol events alongside the payload.
                let at_us = (ev.at + spent).as_micros();
                self.state
                    .obs
                    .flight(to.0 as u64, at_us, FlightKind::NodePanic, 0, 0);
                let dump = self.state.obs.dump_flight(to.0 as u64).unwrap_or_default();
                eprintln!("node {} panicked: {msg}\n{dump}", to.0);
                self.flight_dump = Some(dump);
                self.panicked = Some((to, msg));
                return RunOutcome::NodePanicked { node: to };
            }
            self.nodes[idx] = Some(node);
            if spent > SimDuration::ZERO {
                self.state.metrics.add("cpu.busy_us", spent.as_micros());
                self.busy_until[idx] = ev.at + spent;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages; replies `reply` times to each, spending `cost` CPU.
    struct Worker {
        received: u32,
        cost: SimDuration,
    }
    impl Node for Worker {
        fn on_message(&mut self, from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
            self.received += 1;
            ctx.spend(self.cost);
            ctx.send(from, msg);
        }
    }

    /// Sends `count` messages to `peer` at start; records reply times.
    struct Blaster {
        peer: NodeId,
        count: u32,
        replies: Vec<SimTime>,
    }
    impl Node for Blaster {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for _ in 0..self.count {
                ctx.send(self.peer, Bytes::from_static(b"x"));
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Bytes, ctx: &mut Context<'_>) {
            self.replies.push(ctx.now());
        }
    }

    #[test]
    fn request_reply_latency_is_deterministic() {
        let run = || {
            let mut sim = Simulation::new(11);
            let w = sim.add_node(Box::new(Worker {
                received: 0,
                cost: SimDuration::ZERO,
            }));
            let b = sim.add_node(Box::new(Blaster {
                peer: w,
                count: 1,
                replies: Vec::new(),
            }));
            assert_eq!(sim.run(), RunOutcome::Quiescent);
            let t = sim.node_mut::<Blaster>(b).unwrap().replies[0];
            (t, sim.trace_digest())
        };
        let (t1, d1) = run();
        let (t2, d2) = run();
        assert_eq!(t1, t2);
        assert_eq!(d1, d2);
        // one-way 39us + jitter(<6us) each way
        assert!(t1.as_micros() >= 78 && t1.as_micros() < 100, "t={t1:?}");
    }

    #[test]
    fn cpu_model_serializes_work() {
        // 10 requests, each costing 1ms of CPU at the worker: the last reply
        // cannot arrive before 10ms of worker busy time.
        let mut sim = Simulation::new(5);
        let w = sim.add_node(Box::new(Worker {
            received: 0,
            cost: SimDuration::from_millis(1),
        }));
        let b = sim.add_node(Box::new(Blaster {
            peer: w,
            count: 10,
            replies: Vec::new(),
        }));
        sim.run();
        let replies = &sim.node_mut::<Blaster>(b).unwrap().replies;
        assert_eq!(replies.len(), 10);
        let last = *replies.last().unwrap();
        assert!(last.as_micros() >= 10_000, "last={last:?}");
        // And they are spaced ~1ms apart (serialized, not parallel).
        let spacing = replies[9] - replies[1];
        assert!(spacing.as_micros() >= 7_500, "spacing={spacing:?}");
    }

    #[test]
    fn crashed_nodes_receive_nothing() {
        let mut sim = Simulation::new(5);
        let w = sim.add_node(Box::new(Worker {
            received: 0,
            cost: SimDuration::ZERO,
        }));
        let _b = sim.add_node(Box::new(Blaster {
            peer: w,
            count: 5,
            replies: Vec::new(),
        }));
        sim.net_mut().crash(w);
        sim.run();
        assert_eq!(sim.node_mut::<Worker>(w).unwrap().received, 0);
    }

    struct TimerNode {
        fired: Vec<TimerId>,
        cancel_second: bool,
        pending: Vec<TimerId>,
    }
    impl Node for TimerNode {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let a = ctx.set_timer(SimDuration::from_millis(1));
            let b = ctx.set_timer(SimDuration::from_millis(2));
            self.pending = vec![a, b];
            if self.cancel_second {
                ctx.cancel_timer(b);
            }
        }
        fn on_timer(&mut self, timer: TimerId, _ctx: &mut Context<'_>) {
            self.fired.push(timer);
        }
        fn on_message(&mut self, _: NodeId, _: Bytes, _: &mut Context<'_>) {}
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut sim = Simulation::new(1);
        let n = sim.add_node(Box::new(TimerNode {
            fired: vec![],
            cancel_second: true,
            pending: vec![],
        }));
        sim.run();
        let node = sim.node_mut::<TimerNode>(n).unwrap();
        assert_eq!(node.fired.len(), 1);
        assert_eq!(node.fired[0], node.pending[0]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(1);
        sim.add_node(Box::new(TimerNode {
            fired: vec![],
            cancel_second: false,
            pending: vec![],
        }));
        let out = sim.run_until(SimTime::from_micros(1500));
        assert_eq!(out, RunOutcome::DeadlineReached);
        assert_eq!(sim.now(), SimTime::from_micros(1500));
        let out = sim.run();
        assert_eq!(out, RunOutcome::Quiescent);
    }

    #[test]
    fn event_budget_halts_runaway() {
        struct PingPong {
            peer: Option<NodeId>,
        }
        impl Node for PingPong {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                if let Some(p) = self.peer {
                    ctx.send(p, Bytes::from_static(b"go"));
                }
            }
            fn on_message(&mut self, from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
                ctx.send(from, msg);
            }
        }
        let mut sim = Simulation::new(1);
        let a = sim.add_node(Box::new(PingPong { peer: None }));
        sim.add_node(Box::new(PingPong { peer: Some(a) }));
        sim.set_event_budget(1000);
        assert_eq!(sim.run(), RunOutcome::BudgetExhausted);
    }

    #[test]
    fn stop_halts_run() {
        struct Stopper;
        impl Node for Stopper {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_secs(1));
                ctx.stop();
            }
            fn on_message(&mut self, _: NodeId, _: Bytes, _: &mut Context<'_>) {}
        }
        let mut sim = Simulation::new(1);
        sim.add_node(Box::new(Stopper));
        assert_eq!(sim.run(), RunOutcome::Stopped);
        // Can resume afterwards.
        assert_eq!(sim.run(), RunOutcome::Quiescent);
    }

    #[test]
    fn node_panic_surfaces_as_failed_outcome_and_poisons_the_run() {
        struct Bomb;
        impl Node for Bomb {
            fn on_message(&mut self, _: NodeId, _: Bytes, _: &mut Context<'_>) {
                panic!("service bug: boom");
            }
        }
        let mut sim = Simulation::new(3);
        let b = sim.add_node(Box::new(Bomb));
        let fake = NodeId::from_raw(999);
        sim.inject(fake, b, Bytes::from_static(b"x"));
        assert_eq!(sim.run(), RunOutcome::NodePanicked { node: b });
        assert!(sim.panic_message().unwrap().contains("boom"));
        // Poisoned: later runs report the same failure instead of hanging.
        assert_eq!(sim.run(), RunOutcome::NodePanicked { node: b });
        // The broken node is gone; typed access returns None.
        assert!(sim.node_mut::<Bomb>(b).is_none());
    }

    #[test]
    fn inject_drives_a_node() {
        let mut sim = Simulation::new(2);
        let w = sim.add_node(Box::new(Worker {
            received: 0,
            cost: SimDuration::ZERO,
        }));
        let fake = NodeId::from_raw(999); // nonexistent sender is fine
        sim.inject(fake, w, Bytes::from_static(b"hello"));
        sim.run();
        assert_eq!(sim.node_mut::<Worker>(w).unwrap().received, 1);
        assert!(sim.metrics().counter("net.messages_delivered") >= 1);
    }
}
