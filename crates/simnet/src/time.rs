//! Virtual time types.
//!
//! Simulated time is measured in whole microseconds, which is fine-grained
//! enough to model the paper's 78 µs RTT network while keeping arithmetic
//! exact (no floating point drift between runs).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the duration by an integer factor, saturating.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Checked scalar multiply by a float cost factor (for per-byte costs).
    ///
    /// Rounds to the nearest microsecond; negative factors are clamped to 0.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        let v = (self.0 as f64 * k.max(0.0)).round();
        SimDuration(if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        })
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        let t2 = t + SimDuration::from_micros(250);
        assert_eq!(t2.as_micros(), 5_250);
        assert_eq!((t2 - t).as_micros(), 250);
        assert_eq!(t - t2, SimDuration::ZERO, "subtraction saturates");
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_micros(100).mul_f64(0.5).as_micros(), 50);
        assert_eq!(SimDuration::from_micros(3).mul_f64(0.4).as_micros(), 1);
        assert_eq!(
            SimDuration::from_micros(10).mul_f64(-2.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(20);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_micros(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(format!("{:?}", SimTime::from_micros(9)), "t+9us");
    }
}
