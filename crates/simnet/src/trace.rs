//! Execution tracing.
//!
//! The primary consumer is the determinism test suite: a [`TraceDigest`]
//! folds every observable scheduling decision (delivery time, recipient,
//! payload bytes) into a single hash, so two runs can be compared cheaply
//! and any divergence — even a one-byte payload difference — is detected.

use crate::node::NodeId;
use crate::time::SimTime;

/// An order-sensitive rolling hash over simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest {
    hash: u64,
    events: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        TraceDigest {
            hash: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            events: 0,
        }
    }
}

impl TraceDigest {
    /// A fresh digest.
    pub fn new() -> Self {
        TraceDigest::default()
    }

    fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x1000_0000_01b3); // FNV prime
        }
    }

    fn mix_u64(&mut self, v: u64) {
        self.mix_bytes(&v.to_le_bytes());
    }

    /// Folds a message delivery into the digest.
    pub fn record_delivery(&mut self, at: SimTime, from: NodeId, to: NodeId, payload: &[u8]) {
        self.mix_u64(1);
        self.mix_u64(at.as_micros());
        self.mix_u64(from.raw() as u64);
        self.mix_u64(to.raw() as u64);
        self.mix_u64(payload.len() as u64);
        self.mix_bytes(payload);
        self.events += 1;
    }

    /// Folds a timer firing into the digest.
    pub fn record_timer(&mut self, at: SimTime, node: NodeId, timer: u64) {
        self.mix_u64(2);
        self.mix_u64(at.as_micros());
        self.mix_u64(node.raw() as u64);
        self.mix_u64(timer);
        self.events += 1;
    }

    /// The digest value. Equal digests mean (with overwhelming probability)
    /// identical event sequences.
    pub fn value(&self) -> u64 {
        self.hash
    }

    /// Number of events folded in.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_agree() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        for d in [&mut a, &mut b] {
            d.record_delivery(SimTime::from_micros(5), NodeId(0), NodeId(1), b"hello");
            d.record_timer(SimTime::from_micros(9), NodeId(1), 3);
        }
        assert_eq!(a, b);
        assert_eq!(a.events(), 2);
    }

    #[test]
    fn payload_differences_are_detected() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        a.record_delivery(SimTime::ZERO, NodeId(0), NodeId(1), b"aaaa");
        b.record_delivery(SimTime::ZERO, NodeId(0), NodeId(1), b"aaab");
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn order_matters() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        a.record_timer(SimTime::ZERO, NodeId(0), 1);
        a.record_timer(SimTime::ZERO, NodeId(0), 2);
        b.record_timer(SimTime::ZERO, NodeId(0), 2);
        b.record_timer(SimTime::ZERO, NodeId(0), 1);
        assert_ne!(a.value(), b.value());
    }
}
