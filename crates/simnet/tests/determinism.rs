//! Determinism suite: the contract every future PR leans on.
//!
//! Two runs with the same master seed must be bit-for-bit identical — same
//! event trace digest, same event count, same metrics, same final virtual
//! time — even with jittery links and probabilistic drops in play, because
//! all randomness flows from per-node seeded streams. Different seeds must
//! diverge.

use bytes::Bytes;
use pws_simnet::{Context, LinkConfig, NetConfig, Node, NodeId, SimDuration, SimTime, Simulation};

/// A node that gossips random payloads to random peers on a timer, burns
/// simulated CPU, and counts deliveries — enough traffic through every
/// randomized subsystem (RNG streams, jitter, drops, timer scheduling) that
/// any nondeterminism would show up in the trace digest.
struct Gossiper {
    peers: u32,
    period: SimDuration,
}

impl Node for Gossiper {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.period);
    }

    fn on_message(&mut self, _from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
        ctx.metrics().incr("gossip.delivered");
        ctx.metrics().add("gossip.bytes", msg.len() as u64);
        // Simulated processing cost proportional to payload size.
        ctx.spend(SimDuration::from_micros(5 + msg.len() as u64 / 16));
        // Occasionally gossip onwards.
        if ctx.rng().unit() < 0.25 {
            let me = ctx.id().raw();
            let next = pick_peer(ctx, self.peers, me);
            let payload = random_payload(ctx);
            ctx.send(next, payload);
        }
    }

    fn on_timer(&mut self, _timer: pws_simnet::TimerId, ctx: &mut Context<'_>) {
        let me = ctx.id().raw();
        let peer = pick_peer(ctx, self.peers, me);
        let payload = random_payload(ctx);
        ctx.metrics().incr("gossip.sent");
        ctx.send(peer, payload);
        ctx.set_timer(self.period);
    }
}

fn pick_peer(ctx: &mut Context<'_>, peers: u32, me: u32) -> NodeId {
    let mut p = ctx.rng().below(peers as u64) as u32;
    if p == me {
        p = (p + 1) % peers;
    }
    NodeId::from_raw(p)
}

fn random_payload(ctx: &mut Context<'_>) -> Bytes {
    let len = 1 + ctx.rng().below(96) as usize;
    let mut buf = vec![0u8; len];
    for b in &mut buf {
        *b = ctx.rng().below(256) as u8;
    }
    Bytes::from(buf)
}

/// Everything observable about a finished run, in comparable form.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    trace_hash: u64,
    trace_events: u64,
    final_time_us: u64,
    metrics: String,
}

fn run_gossip(seed: u64) -> RunFingerprint {
    let link = LinkConfig {
        base: SimDuration::from_micros(39),
        per_byte_us: 0.008,
        jitter: SimDuration::from_micros(25),
        drop_probability: 0.05,
    };
    let mut sim = Simulation::with_net(seed, NetConfig::new(link));
    let n = 6u32;
    for _ in 0..n {
        sim.add_node(Box::new(Gossiper {
            peers: n,
            period: SimDuration::from_micros(700),
        }));
    }
    sim.run_until(SimTime::from_secs(2));
    let digest = sim.trace_digest();
    RunFingerprint {
        trace_hash: digest.value(),
        trace_events: digest.events(),
        final_time_us: sim.now().as_micros(),
        // Metrics is a Debug over BTreeMaps, so its rendering is itself
        // deterministic and captures every counter and sample bit-for-bit.
        metrics: format!("{:?}", sim.metrics()),
    }
}

#[test]
fn same_seed_is_bit_for_bit_identical() {
    let a = run_gossip(0xD5EED);
    let b = run_gossip(0xD5EED);
    assert!(
        a.trace_events > 1_000,
        "workload too small to be meaningful"
    );
    assert_eq!(a, b, "same master seed must reproduce the exact run");
}

#[test]
fn several_seeds_all_self_reproduce() {
    for seed in [1u64, 42, 2008, u64::MAX] {
        assert_eq!(run_gossip(seed), run_gossip(seed), "seed {seed}");
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run_gossip(1001);
    let b = run_gossip(1002);
    assert_ne!(
        a.trace_hash, b.trace_hash,
        "different seeds must produce different traces"
    );
}

#[test]
fn node_insertion_order_is_part_of_the_contract() {
    // Two topologically identical sims built in the same order agree even
    // when constructed interleaved with other work.
    let mk = || {
        let mut sim = Simulation::new(77);
        for _ in 0..4 {
            sim.add_node(Box::new(Gossiper {
                peers: 4,
                period: SimDuration::from_micros(500),
            }));
        }
        sim.run_for(SimDuration::from_millis(400));
        sim.trace_digest()
    };
    assert_eq!(mk(), mk());
}
