//! WS-Addressing header properties (paper §5.1).
//!
//! The Perpetual-WS `MessageHandler` correlates asynchronous replies with
//! requests through `wsa:MessageID` / `wsa:RelatesTo`, and routes replies
//! through `wsa:ReplyTo`.

use crate::envelope::Envelope;
use crate::xml::XmlNode;

/// Parsed WS-Addressing properties of a message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Addressing {
    /// Destination endpoint URI (`wsa:To`).
    pub to: Option<String>,
    /// Reply endpoint URI (`wsa:ReplyTo/wsa:Address`).
    pub reply_to: Option<String>,
    /// Unique message id (`wsa:MessageID`).
    pub message_id: Option<String>,
    /// Id of the message this one replies to (`wsa:RelatesTo`).
    pub relates_to: Option<String>,
    /// SOAP action (`wsa:Action`).
    pub action: Option<String>,
}

impl Addressing {
    /// Extracts addressing properties from an envelope's headers.
    pub fn from_envelope(env: &Envelope) -> Addressing {
        let text = |local: &str| env.header(local).map(|h| h.text.clone());
        let reply_to = env.header("ReplyTo").map(|h| {
            h.find("Address")
                .map(|a| a.text.clone())
                .unwrap_or_else(|| h.text.clone())
        });
        Addressing {
            to: text("To"),
            reply_to,
            message_id: text("MessageID"),
            relates_to: text("RelatesTo"),
            action: text("Action"),
        }
    }

    /// Writes these properties into an envelope's headers (replacing any
    /// existing addressing headers).
    pub fn apply_to(&self, env: &mut Envelope) {
        for local in ["To", "ReplyTo", "MessageID", "RelatesTo", "Action"] {
            env.remove_headers(local);
        }
        if let Some(v) = &self.to {
            env.add_header(XmlNode::new("wsa:To").with_text(v.clone()));
        }
        if let Some(v) = &self.reply_to {
            env.add_header(
                XmlNode::new("wsa:ReplyTo").child(XmlNode::new("wsa:Address").with_text(v.clone())),
            );
        }
        if let Some(v) = &self.message_id {
            env.add_header(XmlNode::new("wsa:MessageID").with_text(v.clone()));
        }
        if let Some(v) = &self.relates_to {
            env.add_header(XmlNode::new("wsa:RelatesTo").with_text(v.clone()));
        }
        if let Some(v) = &self.action {
            env.add_header(XmlNode::new("wsa:Action").with_text(v.clone()));
        }
    }

    /// Builds the addressing block of a reply to a message with these
    /// properties, as the Perpetual-WS `MessageHandler` does in stage (7):
    /// `to` ← request's `replyTo`, `relatesTo` ← request's `messageID`.
    pub fn reply_addressing(&self, reply_message_id: impl Into<String>) -> Addressing {
        Addressing {
            to: self.reply_to.clone(),
            reply_to: None,
            message_id: Some(reply_message_id.into()),
            relates_to: self.message_id.clone(),
            action: self.action.as_ref().map(|a| format!("{a}Response")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_envelope() {
        let addr = Addressing {
            to: Some("urn:svc:pge".into()),
            reply_to: Some("urn:svc:store".into()),
            message_id: Some("urn:uuid:7".into()),
            relates_to: None,
            action: Some("authorize".into()),
        };
        let mut env = Envelope::new();
        addr.apply_to(&mut env);
        let parsed = Addressing::from_envelope(&env);
        assert_eq!(parsed, addr);
        // Wire roundtrip too.
        let back = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(Addressing::from_envelope(&back), addr);
    }

    #[test]
    fn apply_replaces_existing() {
        let mut env = Envelope::new();
        Addressing {
            to: Some("a".into()),
            ..Default::default()
        }
        .apply_to(&mut env);
        Addressing {
            to: Some("b".into()),
            ..Default::default()
        }
        .apply_to(&mut env);
        assert_eq!(env.headers().len(), 1);
        assert_eq!(Addressing::from_envelope(&env).to.as_deref(), Some("b"));
    }

    #[test]
    fn reply_addressing_mirrors_request() {
        let req = Addressing {
            to: Some("urn:svc:pge".into()),
            reply_to: Some("urn:svc:store".into()),
            message_id: Some("urn:uuid:42".into()),
            relates_to: None,
            action: Some("authorize".into()),
        };
        let rep = req.reply_addressing("urn:uuid:43");
        assert_eq!(rep.to.as_deref(), Some("urn:svc:store"));
        assert_eq!(rep.relates_to.as_deref(), Some("urn:uuid:42"));
        assert_eq!(rep.message_id.as_deref(), Some("urn:uuid:43"));
        assert_eq!(rep.action.as_deref(), Some("authorizeResponse"));
    }

    #[test]
    fn missing_headers_are_none() {
        let env = Envelope::new();
        let addr = Addressing::from_envelope(&env);
        assert_eq!(addr, Addressing::default());
    }
}
