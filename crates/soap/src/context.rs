//! The message context: the unit flowing through the engine, mirroring
//! `org.apache.axis2.context.MessageContext` (paper §4.2, §5.1).

use crate::addressing::Addressing;
use crate::envelope::Envelope;
use crate::xml::{XmlError, XmlNode};
use bytes::Bytes;

/// Per-message options, mirroring the Axis2 `Options` object. The paper's
/// abort mechanism is driven by `setTimeOutInMilliSeconds` (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Options {
    /// Abort timeout in milliseconds; `None` (the default) never aborts.
    pub timeout_ms: Option<u64>,
}

impl Options {
    /// Sets the request abort timeout, like
    /// `Options.setTimeOutInMilliSeconds`.
    pub fn set_timeout_millis(&mut self, ms: u64) {
        self.timeout_ms = Some(ms);
    }
}

/// A SOAP message together with its addressing properties and options.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageContext {
    envelope: Envelope,
    addressing: Addressing,
    options: Options,
}

impl MessageContext {
    /// Creates a request context addressed to `to` with the given action.
    pub fn request(to: impl Into<String>, action: impl Into<String>) -> Self {
        MessageContext {
            envelope: Envelope::new(),
            addressing: Addressing {
                to: Some(to.into()),
                action: Some(action.into()),
                ..Default::default()
            },
            options: Options::default(),
        }
    }

    /// Wraps an envelope (addressing extracted from its headers).
    pub fn from_envelope(envelope: Envelope) -> Self {
        let addressing = Addressing::from_envelope(&envelope);
        MessageContext {
            envelope,
            addressing,
            options: Options::default(),
        }
    }

    /// The envelope.
    pub fn envelope(&self) -> &Envelope {
        &self.envelope
    }

    /// Mutable access to the envelope.
    pub fn envelope_mut(&mut self) -> &mut Envelope {
        &mut self.envelope
    }

    /// The addressing properties.
    pub fn addressing(&self) -> &Addressing {
        &self.addressing
    }

    /// Mutable access to the addressing properties.
    pub fn addressing_mut(&mut self) -> &mut Addressing {
        &mut self.addressing
    }

    /// The per-message options.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Mutable access to the options.
    pub fn options_mut(&mut self) -> &mut Options {
        &mut self.options
    }

    /// Shorthand: the body payload element.
    pub fn body(&self) -> &XmlNode {
        self.envelope.body()
    }

    /// Shorthand: mutable body payload element.
    pub fn body_mut(&mut self) -> &mut XmlNode {
        self.envelope.body_mut()
    }

    /// Builds a reply context to this message: addressing mirrored per
    /// WS-Addressing, with the given reply message id and body.
    pub fn reply_with(&self, reply_message_id: impl Into<String>, body: XmlNode) -> Self {
        MessageContext {
            envelope: Envelope::with_body(body),
            addressing: self.addressing.reply_addressing(reply_message_id),
            options: Options::default(),
        }
    }

    /// Serializes: addressing is written into the headers, then the
    /// envelope to XML bytes.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` to keep the signature
    /// stable when schema validation is added.
    pub fn to_bytes(&self) -> Result<Bytes, XmlError> {
        let mut env = self.envelope.clone();
        self.addressing.apply_to(&mut env);
        Ok(Bytes::from(env.to_xml()))
    }

    /// Parses a serialized message context.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] if the bytes are not a valid SOAP envelope.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, XmlError> {
        let text =
            std::str::from_utf8(bytes).map_err(|_| XmlNode::parse("<invalid-utf8").unwrap_err())?;
        let envelope = Envelope::parse(text)?;
        Ok(MessageContext::from_envelope(envelope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_sets_addressing() {
        let mut ctx = MessageContext::request("urn:svc:bank", "validate");
        ctx.options_mut().set_timeout_millis(2500);
        assert_eq!(ctx.addressing().to.as_deref(), Some("urn:svc:bank"));
        assert_eq!(ctx.addressing().action.as_deref(), Some("validate"));
        assert_eq!(ctx.options().timeout_ms, Some(2500));
    }

    #[test]
    fn wire_roundtrip_preserves_addressing_and_body() {
        let mut ctx = MessageContext::request("urn:svc:pge", "authorize");
        ctx.addressing_mut().message_id = Some("urn:uuid:9".into());
        ctx.addressing_mut().reply_to = Some("urn:svc:store".into());
        ctx.body_mut().name = "authorize".into();
        ctx.body_mut().text = "77.00".into();
        let bytes = ctx.to_bytes().unwrap();
        let back = MessageContext::from_bytes(&bytes).unwrap();
        assert_eq!(back.addressing(), ctx.addressing());
        assert_eq!(back.body().name, "authorize");
        assert_eq!(back.body().text, "77.00");
    }

    #[test]
    fn reply_with_correlates() {
        let mut req = MessageContext::request("urn:svc:pge", "authorize");
        req.addressing_mut().message_id = Some("m1".into());
        req.addressing_mut().reply_to = Some("urn:svc:store".into());
        let rep = req.reply_with("m2", XmlNode::new("authorizeResult").with_text("ok"));
        assert_eq!(rep.addressing().to.as_deref(), Some("urn:svc:store"));
        assert_eq!(rep.addressing().relates_to.as_deref(), Some("m1"));
        assert_eq!(rep.body().text, "ok");
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(MessageContext::from_bytes(b"\xff\xfe").is_err());
        assert!(MessageContext::from_bytes(b"<foo/>").is_err());
    }
}
