//! The engine: OUT-PIPE and IN-PIPE around a transport boundary (§2.3).

use crate::context::MessageContext;
use crate::handler::{AddressingOutHandler, Flow, HandlerError, Pipe, ValidateToHandler};

/// An Axis2-style engine: messages leave through the OUT-PIPE and arrive
/// through the IN-PIPE. Perpetual-WS plugs its transport between the two
/// (Fig. 4 of the paper).
#[derive(Debug)]
pub struct Engine {
    out_pipe: Pipe,
    in_pipe: Pipe,
    /// Shared handle to the default [`AddressingOutHandler`]'s id counter,
    /// so the engine's owner can checkpoint and restore it.
    id_counter: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the default handlers: destination validation and
    /// message-id assignment on the way out, nothing on the way in.
    pub fn new() -> Self {
        Engine::with_id_prefix("engine")
    }

    /// An engine whose assigned message ids carry `prefix` — replicas of a
    /// group must share the prefix so ids agree across replicas.
    pub fn with_id_prefix(prefix: impl Into<String>) -> Self {
        let addressing = AddressingOutHandler::new(prefix);
        let id_counter = addressing.counter_handle();
        let mut out_pipe = Pipe::new();
        out_pipe
            .add(Box::new(ValidateToHandler))
            .add(Box::new(addressing));
        Engine {
            out_pipe,
            in_pipe: Pipe::new(),
            id_counter,
        }
    }

    /// The number of message ids assigned so far (checkpoint state).
    pub fn id_counter(&self) -> u64 {
        self.id_counter.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Restores the id-assignment counter from a checkpoint, so a
    /// recovered replica resumes the group-agreed id sequence.
    pub fn set_id_counter(&self, n: u64) {
        self.id_counter
            .store(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Adds a custom handler to the OUT-PIPE.
    pub fn add_out_handler(&mut self, h: Box<dyn crate::handler::Handler>) {
        self.out_pipe.add(h);
    }

    /// Adds a custom handler to the IN-PIPE.
    pub fn add_in_handler(&mut self, h: Box<dyn crate::handler::Handler>) {
        self.in_pipe.add(h);
    }

    /// Runs an outgoing message through the OUT-PIPE.
    ///
    /// # Errors
    ///
    /// Propagates the first [`HandlerError`].
    pub fn run_out_pipe(&mut self, ctx: &mut MessageContext) -> Result<Flow, HandlerError> {
        self.out_pipe.run(ctx)
    }

    /// Runs an incoming message through the IN-PIPE.
    ///
    /// # Errors
    ///
    /// Propagates the first [`HandlerError`].
    pub fn run_in_pipe(&mut self, ctx: &mut MessageContext) -> Result<Flow, HandlerError> {
        self.in_pipe.run(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::Handler;

    #[test]
    fn out_pipe_assigns_ids_and_validates() {
        let mut e = Engine::with_id_prefix("g7");
        let mut ctx = MessageContext::request("urn:svc", "op");
        e.run_out_pipe(&mut ctx).unwrap();
        assert!(ctx
            .addressing()
            .message_id
            .as_deref()
            .unwrap()
            .starts_with("urn:uuid:g7-"));
        let mut bad = MessageContext::request("", "op");
        assert!(e.run_out_pipe(&mut bad).is_err());
    }

    #[test]
    fn custom_in_handler_runs() {
        struct Mark;
        impl Handler for Mark {
            fn name(&self) -> &str {
                "mark"
            }
            fn invoke(&mut self, ctx: &mut MessageContext) -> Result<Flow, HandlerError> {
                ctx.body_mut().text = "seen".into();
                Ok(Flow::Continue)
            }
        }
        let mut e = Engine::new();
        e.add_in_handler(Box::new(Mark));
        let mut ctx = MessageContext::request("urn:svc", "op");
        e.run_in_pipe(&mut ctx).unwrap();
        assert_eq!(ctx.body().text, "seen");
    }

    #[test]
    fn replicas_with_same_prefix_assign_same_ids() {
        let mut e1 = Engine::with_id_prefix("group3");
        let mut e2 = Engine::with_id_prefix("group3");
        let mut c1 = MessageContext::request("urn:x", "op");
        let mut c2 = MessageContext::request("urn:x", "op");
        e1.run_out_pipe(&mut c1).unwrap();
        e2.run_out_pipe(&mut c2).unwrap();
        assert_eq!(c1.addressing().message_id, c2.addressing().message_id);
    }
}
