//! SOAP 1.2 envelopes.

use crate::xml::{XmlError, XmlNode};
use std::fmt;

/// The SOAP 1.2 envelope namespace.
pub const SOAP_NS: &str = "http://www.w3.org/2003/05/soap-envelope";
/// The WS-Addressing namespace (paper §5.1 uses WS-Addressing for
/// asynchronous message correlation).
pub const WSA_NS: &str = "http://www.w3.org/2005/08/addressing";

/// A SOAP fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Fault code (e.g. `soap:Receiver`).
    pub code: String,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "soap fault {}: {}", self.code, self.reason)
    }
}

impl std::error::Error for Fault {}

/// A SOAP envelope: header blocks plus one body element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    header: Vec<XmlNode>,
    body: XmlNode,
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope::new()
    }
}

impl Envelope {
    /// An empty envelope with an empty body payload.
    pub fn new() -> Self {
        Envelope {
            header: Vec::new(),
            body: XmlNode::new("Payload"),
        }
    }

    /// An envelope whose body is `body`.
    pub fn with_body(body: XmlNode) -> Self {
        Envelope {
            header: Vec::new(),
            body,
        }
    }

    /// Appends a header block.
    pub fn add_header(&mut self, node: XmlNode) {
        self.header.push(node);
    }

    /// The header blocks.
    pub fn headers(&self) -> &[XmlNode] {
        &self.header
    }

    /// The first header with the given local name.
    pub fn header(&self, local: &str) -> Option<&XmlNode> {
        self.header
            .iter()
            .find(|h| crate::xml::local_name(&h.name) == local)
    }

    /// Removes every header with the given local name.
    pub fn remove_headers(&mut self, local: &str) {
        self.header
            .retain(|h| crate::xml::local_name(&h.name) != local);
    }

    /// The body payload element.
    pub fn body(&self) -> &XmlNode {
        &self.body
    }

    /// Mutable access to the body payload element.
    pub fn body_mut(&mut self) -> &mut XmlNode {
        &mut self.body
    }

    /// Replaces the body payload.
    pub fn set_body(&mut self, body: XmlNode) {
        self.body = body;
    }

    /// Builds a fault envelope.
    pub fn fault(fault: &Fault) -> Envelope {
        let body = XmlNode::new("soap:Fault")
            .child(
                XmlNode::new("soap:Code")
                    .child(XmlNode::new("soap:Value").with_text(fault.code.clone())),
            )
            .child(
                XmlNode::new("soap:Reason")
                    .child(XmlNode::new("soap:Text").with_text(fault.reason.clone())),
            );
        Envelope::with_body(body)
    }

    /// If the body is a fault, extracts it.
    pub fn as_fault(&self) -> Option<Fault> {
        if crate::xml::local_name(&self.body.name) != "Fault" {
            return None;
        }
        let code = self
            .body
            .find("Code")
            .and_then(|c| c.find("Value"))
            .map(|v| v.text.clone())
            .unwrap_or_default();
        let reason = self
            .body
            .find("Reason")
            .and_then(|r| r.find("Text"))
            .map(|t| t.text.clone())
            .unwrap_or_default();
        Some(Fault { code, reason })
    }

    /// Serializes to a SOAP document.
    pub fn to_xml(&self) -> String {
        let mut env = XmlNode::new("soap:Envelope")
            .attr("xmlns:soap", SOAP_NS)
            .attr("xmlns:wsa", WSA_NS);
        let mut header = XmlNode::new("soap:Header");
        header.children = self.header.clone();
        env = env.child(header);
        let mut body = XmlNode::new("soap:Body");
        body.children = vec![self.body.clone()];
        env = env.child(body);
        env.to_document()
    }

    /// Parses a SOAP document.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] if the XML is malformed or not an envelope.
    pub fn parse(xml: &str) -> Result<Envelope, XmlError> {
        let root = XmlNode::parse(xml)?;
        if crate::xml::local_name(&root.name) != "Envelope" {
            // Reuse the error shape from the XML layer.
            return Err(XmlNode::parse("<not-an-envelope").unwrap_err());
        }
        let header = root
            .find("Header")
            .map(|h| h.children.clone())
            .unwrap_or_default();
        let body = root
            .find("Body")
            .and_then(|b| b.children.first().cloned())
            .unwrap_or_else(|| XmlNode::new("Payload"));
        Ok(Envelope { header, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_headers_and_body() {
        let mut env = Envelope::new();
        env.add_header(XmlNode::new("wsa:To").with_text("urn:svc:bank"));
        env.add_header(XmlNode::new("wsa:MessageID").with_text("urn:uuid:42"));
        env.set_body(
            XmlNode::new("authorize")
                .attr("card", "1234")
                .with_text("99.50"),
        );
        let xml = env.to_xml();
        assert!(xml.contains("soap:Envelope"));
        let back = Envelope::parse(&xml).unwrap();
        assert_eq!(back, env);
        assert_eq!(back.header("To").unwrap().text, "urn:svc:bank");
        assert_eq!(back.body().attribute("card"), Some("1234"));
    }

    #[test]
    fn fault_roundtrip() {
        let f = Fault {
            code: "soap:Receiver".into(),
            reason: "service aborted the request".into(),
        };
        let env = Envelope::fault(&f);
        let back = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(back.as_fault(), Some(f.clone()));
        assert!(f.to_string().contains("aborted"));
        assert!(Envelope::new().as_fault().is_none());
    }

    #[test]
    fn remove_headers() {
        let mut env = Envelope::new();
        env.add_header(XmlNode::new("wsa:To").with_text("a"));
        env.add_header(XmlNode::new("wsa:To").with_text("b"));
        env.add_header(XmlNode::new("wsa:Action").with_text("c"));
        env.remove_headers("To");
        assert!(env.header("To").is_none());
        assert_eq!(env.headers().len(), 1);
    }

    #[test]
    fn rejects_non_envelope() {
        assert!(Envelope::parse("<foo/>").is_err());
        assert!(Envelope::parse("not xml").is_err());
    }

    #[test]
    fn empty_envelope_parses() {
        let env = Envelope::new();
        let back = Envelope::parse(&env.to_xml()).unwrap();
        assert_eq!(back.body().name, "Payload");
    }
}
