//! Axis2-style handler chains (paper §2.3).
//!
//! Messages pass through an OUT-PIPE of [`Handler`]s before reaching the
//! transport, and an IN-PIPE after arriving. Pipes are customizable —
//! Perpetual-WS inserts its `MessageHandler` exactly this way (§5.2).

use crate::context::MessageContext;
use std::fmt;

/// Outcome of one handler invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Continue to the next handler.
    Continue,
    /// Stop the pipe; the message is consumed (e.g. cached response).
    Abort,
}

/// Error raised by a handler; aborts the pipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerError {
    /// Which handler failed.
    pub handler: String,
    /// Why.
    pub message: String,
}

impl fmt::Display for HandlerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "handler '{}' failed: {}", self.handler, self.message)
    }
}

impl std::error::Error for HandlerError {}

/// A message-processing stage.
pub trait Handler {
    /// The handler's name (for errors and introspection).
    fn name(&self) -> &str;

    /// Processes the message.
    ///
    /// # Errors
    ///
    /// Returns [`HandlerError`] to abort the pipe with an error.
    fn invoke(&mut self, ctx: &mut MessageContext) -> Result<Flow, HandlerError>;
}

/// An ordered chain of handlers.
#[derive(Default)]
pub struct Pipe {
    handlers: Vec<Box<dyn Handler>>,
}

impl fmt::Debug for Pipe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.handlers.iter().map(|h| h.name()).collect();
        write!(f, "Pipe({names:?})")
    }
}

impl Pipe {
    /// An empty pipe.
    pub fn new() -> Self {
        Pipe::default()
    }

    /// Appends a handler (the customization point of §2.3).
    pub fn add(&mut self, handler: Box<dyn Handler>) -> &mut Self {
        self.handlers.push(handler);
        self
    }

    /// Number of handlers.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// Whether the pipe has no handlers.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }

    /// Runs the message through every handler in order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`HandlerError`].
    pub fn run(&mut self, ctx: &mut MessageContext) -> Result<Flow, HandlerError> {
        for h in &mut self.handlers {
            match h.invoke(ctx)? {
                Flow::Continue => {}
                Flow::Abort => return Ok(Flow::Abort),
            }
        }
        Ok(Flow::Continue)
    }
}

/// A built-in handler that assigns a `wsa:MessageID` if absent, as the
/// Perpetual-WS MessageHandler does in stage (1) of §5.1.
///
/// The id counter is shared via [`AddressingOutHandler::counter_handle`] so
/// an engine owner can checkpoint and restore it (the counter is part of a
/// replica's deterministic state: a recovered replica must resume the
/// agreed id sequence, not restart it).
#[derive(Debug)]
pub struct AddressingOutHandler {
    prefix: String,
    counter: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl AddressingOutHandler {
    /// Creates the handler; ids look like `urn:uuid:<prefix>-<n>`.
    ///
    /// The prefix must be deterministic per service group (not per host!)
    /// so replicas assign identical ids.
    pub fn new(prefix: impl Into<String>) -> Self {
        AddressingOutHandler {
            prefix: prefix.into(),
            counter: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// A handle to the id counter, for checkpoint/restore.
    pub fn counter_handle(&self) -> std::sync::Arc<std::sync::atomic::AtomicU64> {
        self.counter.clone()
    }
}

impl Handler for AddressingOutHandler {
    fn name(&self) -> &str {
        "addressing-out"
    }

    fn invoke(&mut self, ctx: &mut MessageContext) -> Result<Flow, HandlerError> {
        if ctx.addressing().message_id.is_none() {
            let n = self
                .counter
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                + 1;
            ctx.addressing_mut().message_id = Some(format!("urn:uuid:{}-{}", self.prefix, n));
        }
        Ok(Flow::Continue)
    }
}

/// A built-in handler that rejects messages without a destination.
#[derive(Debug, Default)]
pub struct ValidateToHandler;

impl Handler for ValidateToHandler {
    fn name(&self) -> &str {
        "validate-to"
    }

    fn invoke(&mut self, ctx: &mut MessageContext) -> Result<Flow, HandlerError> {
        if ctx.addressing().to.as_deref().unwrap_or("").is_empty() {
            return Err(HandlerError {
                handler: self.name().to_owned(),
                message: "message has no wsa:To destination".to_owned(),
            });
        }
        Ok(Flow::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tagger(&'static str);
    impl Handler for Tagger {
        fn name(&self) -> &str {
            self.0
        }
        fn invoke(&mut self, ctx: &mut MessageContext) -> Result<Flow, HandlerError> {
            let t = ctx.body().text.clone();
            ctx.body_mut().text = format!("{t}{}", self.0);
            Ok(Flow::Continue)
        }
    }

    struct Stopper;
    impl Handler for Stopper {
        fn name(&self) -> &str {
            "stopper"
        }
        fn invoke(&mut self, _: &mut MessageContext) -> Result<Flow, HandlerError> {
            Ok(Flow::Abort)
        }
    }

    #[test]
    fn handlers_run_in_order() {
        let mut pipe = Pipe::new();
        pipe.add(Box::new(Tagger("a"))).add(Box::new(Tagger("b")));
        assert_eq!(pipe.len(), 2);
        assert!(!pipe.is_empty());
        let mut ctx = MessageContext::request("urn:x", "op");
        assert_eq!(pipe.run(&mut ctx).unwrap(), Flow::Continue);
        assert_eq!(ctx.body().text, "ab");
        assert!(format!("{pipe:?}").contains("a"));
    }

    #[test]
    fn abort_stops_the_pipe() {
        let mut pipe = Pipe::new();
        pipe.add(Box::new(Tagger("a")))
            .add(Box::new(Stopper))
            .add(Box::new(Tagger("b")));
        let mut ctx = MessageContext::request("urn:x", "op");
        assert_eq!(pipe.run(&mut ctx).unwrap(), Flow::Abort);
        assert_eq!(ctx.body().text, "a");
    }

    #[test]
    fn addressing_out_assigns_sequential_ids() {
        let mut h = AddressingOutHandler::new("g1");
        let mut c1 = MessageContext::request("urn:x", "op");
        let mut c2 = MessageContext::request("urn:x", "op");
        h.invoke(&mut c1).unwrap();
        h.invoke(&mut c2).unwrap();
        assert_eq!(c1.addressing().message_id.as_deref(), Some("urn:uuid:g1-1"));
        assert_eq!(c2.addressing().message_id.as_deref(), Some("urn:uuid:g1-2"));
        // Existing ids are preserved.
        let mut c3 = MessageContext::request("urn:x", "op");
        c3.addressing_mut().message_id = Some("keep".into());
        h.invoke(&mut c3).unwrap();
        assert_eq!(c3.addressing().message_id.as_deref(), Some("keep"));
    }

    #[test]
    fn validate_to_rejects_missing_destination() {
        let mut h = ValidateToHandler;
        let mut ok = MessageContext::request("urn:x", "op");
        assert!(h.invoke(&mut ok).is_ok());
        let mut bad = MessageContext::request("", "op");
        let err = h.invoke(&mut bad).unwrap_err();
        assert!(err.to_string().contains("wsa:To"));
    }
}
