//! # pws-soap
//!
//! A minimal SOAP 1.2 / WS-Addressing substrate: the stand-in for Apache
//! Axis2 in the Perpetual-WS reproduction (paper §2.2–2.3, §5).
//!
//! Provides:
//!
//! * [`xml`] — a small, dependency-free XML writer and pull parser
//!   (elements, attributes, text, escaping) sufficient for SOAP envelopes
//!   and `replicas.xml` deployment descriptors.
//! * [`envelope`] — SOAP envelopes with headers, bodies, and faults.
//! * [`addressing`] — WS-Addressing headers: `wsa:To`, `wsa:ReplyTo`,
//!   `wsa:MessageID`, `wsa:RelatesTo`, `wsa:Action` (§5.1).
//! * [`context`] — [`MessageContext`], the unit that flows through the
//!   engine, with per-message [`Options`] (including the abort timeout of
//!   §4.2).
//! * [`handler`] — Axis2-style handler chains: an OUT-PIPE and IN-PIPE of
//!   pluggable [`Handler`]s around a transport boundary (§2.3).
//! * [`engine`] — the engine that runs contexts through the pipes and
//!   hands them to a transport sender / message receiver.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for how this crate
//! slots into the full Perpetual-WS stack.
//!
//! # Example
//!
//! ```
//! use pws_soap::{MessageContext, Envelope, engine::Engine};
//!
//! let mut engine = Engine::new();
//! let mut ctx = MessageContext::request("urn:svc:payment", "authorize");
//! ctx.body_mut().text = "42".to_owned();
//! engine.run_out_pipe(&mut ctx).expect("out pipe");
//! assert!(ctx.addressing().message_id.is_some(), "engine assigned an id");
//! let bytes = ctx.to_bytes().expect("serialize");
//! let back = MessageContext::from_bytes(&bytes).expect("parse");
//! assert_eq!(back.addressing().to.as_deref(), Some("urn:svc:payment"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addressing;
pub mod context;
pub mod engine;
pub mod envelope;
pub mod handler;
pub mod xml;

pub use addressing::Addressing;
pub use context::{MessageContext, Options};
pub use envelope::{Envelope, Fault};
pub use handler::{Flow, Handler, HandlerError, Pipe};
pub use xml::{XmlError, XmlNode};
