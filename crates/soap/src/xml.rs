//! A small XML document model with writer and parser.
//!
//! Supports what SOAP envelopes and deployment descriptors need: nested
//! elements, attributes, text content, standard entity escaping, and
//! self-closing tags. Not supported (not needed): processing instructions,
//! CDATA, comments inside content, DTDs, mixed text-and-element content
//! (text is kept per-element, before children).

use std::fmt;

/// An XML element node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Tag name (possibly prefixed, e.g. `soap:Envelope`).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Text content (appears before any children when serialized).
    pub text: String,
    /// Child elements.
    pub children: Vec<XmlNode>,
}

/// Error from parsing malformed XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    msg: String,
    pos: usize,
}

impl XmlError {
    fn new(msg: impl Into<String>, pos: usize) -> Self {
        XmlError {
            msg: msg.into(),
            pos,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for XmlError {}

impl XmlNode {
    /// Creates an element with no attributes, text, or children.
    pub fn new(name: impl Into<String>) -> Self {
        XmlNode {
            name: name.into(),
            attrs: Vec::new(),
            text: String::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: adds an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Builder-style: sets the text content.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.text = text.into();
        self
    }

    /// Builder-style: appends a child element.
    pub fn child(mut self, child: XmlNode) -> Self {
        self.children.push(child);
        self
    }

    /// The value of attribute `name`, if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first child with tag `name` (local-name match: `a:Foo` matches
    /// lookup `Foo`).
    pub fn find(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| local_name(&c.name) == name)
    }

    /// Mutable variant of [`XmlNode::find`].
    pub fn find_mut(&mut self, name: &str) -> Option<&mut XmlNode> {
        self.children
            .iter_mut()
            .find(|c| local_name(&c.name) == name)
    }

    /// All children with tag `name` (local-name match).
    pub fn find_all(&self, name: &str) -> impl Iterator<Item = &XmlNode> {
        let name = name.to_owned();
        self.children
            .iter()
            .filter(move |c| local_name(&c.name) == name)
    }

    /// Serializes the document with an XML declaration.
    pub fn to_document(&self) -> String {
        let mut s = String::from("<?xml version=\"1.0\" encoding=\"utf-8\"?>");
        self.write(&mut s);
        s
    }

    /// Serializes this element (no declaration).
    pub fn to_xml(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (n, v) in &self.attrs {
            out.push(' ');
            out.push_str(n);
            out.push_str("=\"");
            escape_into(v, out);
            out.push('"');
        }
        if self.text.is_empty() && self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        escape_into(&self.text, out);
        for c in &self.children {
            c.write(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parses a document (optionally starting with an XML declaration).
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed input.
    pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
        let mut p = Parser {
            s: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.skip_declaration()?;
        p.skip_ws();
        let node = p.parse_element()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(XmlError::new("trailing content", p.pos));
        }
        Ok(node)
    }
}

/// The local part of a possibly-prefixed tag name.
pub fn local_name(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

/// Escapes text for inclusion in XML content or attributes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(XmlError::new(format!("expected '{}'", c as char), self.pos))
        }
    }

    fn skip_declaration(&mut self) -> Result<(), XmlError> {
        if self.s[self.pos..].starts_with(b"<?xml") {
            while let Some(c) = self.bump() {
                if c == b'?' && self.peek() == Some(b'>') {
                    self.pos += 1;
                    return Ok(());
                }
            }
            return Err(XmlError::new("unterminated declaration", self.pos));
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b':' | b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::new("expected name", self.pos));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlNode, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut node = XmlNode::new(name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self
                        .bump()
                        .filter(|c| *c == b'"' || *c == b'\'')
                        .ok_or_else(|| XmlError::new("expected quote", self.pos))?;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
                    self.expect(quote)?;
                    node.attrs.push((attr_name, unescape(&raw, start)?));
                }
                None => return Err(XmlError::new("unexpected end in tag", self.pos)),
            }
        }
        // Content: text, then child elements (repeating; text folded).
        let mut text = String::new();
        loop {
            match self.peek() {
                Some(b'<') => {
                    if self.s[self.pos..].starts_with(b"</") {
                        self.pos += 2;
                        let close = self.parse_name()?;
                        if close != node.name {
                            return Err(XmlError::new(
                                format!("mismatched close: <{}> vs </{close}>", node.name),
                                self.pos,
                            ));
                        }
                        self.skip_ws();
                        self.expect(b'>')?;
                        node.text = text.trim().to_owned();
                        return Ok(node);
                    }
                    node.children.push(self.parse_element()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
                    text.push_str(&unescape(&raw, start)?);
                }
                None => return Err(XmlError::new("unexpected end in content", self.pos)),
            }
        }
    }
}

fn unescape(s: &str, pos: usize) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let end = rest
            .find(';')
            .ok_or_else(|| XmlError::new("unterminated entity", pos))?;
        match &rest[..=end] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => return Err(XmlError::new(format!("unknown entity {other}"), pos)),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn build_and_serialize() {
        let doc = XmlNode::new("root")
            .attr("id", "1")
            .child(XmlNode::new("a").with_text("hello"))
            .child(XmlNode::new("b"));
        assert_eq!(doc.to_xml(), r#"<root id="1"><a>hello</a><b/></root>"#);
        assert!(doc.to_document().starts_with("<?xml"));
    }

    #[test]
    fn parse_roundtrip() {
        let src = r#"<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">
            <env:Header><wsa:To>urn:x</wsa:To></env:Header>
            <env:Body><op amount="4 &amp; 5">text &lt;here&gt;</op></env:Body>
        </env:Envelope>"#;
        let node = XmlNode::parse(src).unwrap();
        assert_eq!(node.name, "env:Envelope");
        let body = node.find("Body").unwrap();
        let op = body.find("op").unwrap();
        assert_eq!(op.text, "text <here>");
        assert_eq!(op.attribute("amount"), Some("4 & 5"));
        let header = node.find("Header").unwrap();
        assert_eq!(header.find("To").unwrap().text, "urn:x");
        // Reserialize and reparse: stable.
        let again = XmlNode::parse(&node.to_xml()).unwrap();
        assert_eq!(node, again);
    }

    #[test]
    fn parse_with_declaration() {
        let node = XmlNode::parse("<?xml version=\"1.0\"?><a/>").unwrap();
        assert_eq!(node.name, "a");
    }

    #[test]
    fn escaping_roundtrip() {
        let node = XmlNode::new("t").with_text("a<b>&\"'c").attr("k", "x&y\"z");
        let parsed = XmlNode::parse(&node.to_xml()).unwrap();
        assert_eq!(parsed.text, "a<b>&\"'c");
        assert_eq!(parsed.attribute("k"), Some("x&y\"z"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "<a>",
            "<a></b>",
            "no tags",
            "<a attr></a>",
            "<a>&unknown;</a>",
            "<a/><b/>",
            "",
            "<a x='1' x2=>",
        ] {
            assert!(XmlNode::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn local_name_strips_prefix() {
        assert_eq!(local_name("wsa:To"), "To");
        assert_eq!(local_name("To"), "To");
    }

    #[test]
    fn find_all_and_find_mut() {
        let mut doc = XmlNode::new("r")
            .child(XmlNode::new("x").with_text("1"))
            .child(XmlNode::new("x").with_text("2"));
        assert_eq!(doc.find_all("x").count(), 2);
        doc.find_mut("x").unwrap().text = "9".into();
        assert_eq!(doc.find("x").unwrap().text, "9");
    }

    fn arb_text() -> impl Strategy<Value = String> {
        // Printable text without control chars; parser trims whitespace.
        "[a-zA-Z0-9 <>&'\"_.-]{0,40}".prop_map(|s| s.trim().to_owned())
    }

    proptest! {
        #[test]
        fn text_roundtrips(text in arb_text(), attr in arb_text()) {
            let node = XmlNode::new("n").with_text(text.clone()).attr("a", attr.clone());
            let parsed = XmlNode::parse(&node.to_xml()).unwrap();
            // Whitespace at the edges is trimmed by the parser; inner
            // whitespace is preserved.
            prop_assert_eq!(parsed.text.as_str(), node.text.trim());
            prop_assert_eq!(parsed.attribute("a").unwrap(), attr.as_str());
        }

        #[test]
        fn parser_never_panics(input in "[ -~]{0,200}") {
            let _ = XmlNode::parse(&input);
        }
    }
}
