//! Property suite for SOAP envelope serialization: a message context's
//! addressing headers and body survive `to_bytes` → `from_bytes` unchanged,
//! and mangled envelopes (truncated, corrupted) are rejected or at least
//! never panic the parser.

use proptest::prelude::*;
use pws_soap::{MessageContext, XmlNode};

/// URI-ish strings for WS-Addressing headers (no XML structure, no edge
/// whitespace — the parser canonicalizes those away by design).
fn arb_uri() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9:/._-]{1,24}"
}

/// Body text exercising the XML escaper, trimmed because the parser trims
/// edge whitespace.
fn arb_text() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 <>&'\"_.-]{0,40}".prop_map(|s| s.trim().to_owned())
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9]{0,11}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn envelope_round_trips(
        to in arb_uri(),
        action in arb_uri(),
        message_id in arb_uri(),
        reply_to in arb_uri(),
        relates_to in arb_uri(),
        body_name in arb_name(),
        body_text in arb_text(),
        attr in arb_text(),
    ) {
        let mut mc = MessageContext::request(to.clone(), action.clone());
        mc.addressing_mut().message_id = Some(message_id.clone());
        mc.addressing_mut().reply_to = Some(reply_to.clone());
        mc.addressing_mut().relates_to = Some(relates_to.clone());
        *mc.body_mut() = XmlNode::new(body_name.clone())
            .with_text(body_text.clone())
            .attr("a", attr.clone());

        let bytes = mc.to_bytes().expect("serialize");
        let back = MessageContext::from_bytes(&bytes).expect("reparse");

        prop_assert_eq!(back.addressing().to.as_deref(), Some(to.as_str()));
        prop_assert_eq!(back.addressing().action.as_deref(), Some(action.as_str()));
        prop_assert_eq!(back.addressing().message_id.as_deref(), Some(message_id.as_str()));
        prop_assert_eq!(back.addressing().reply_to.as_deref(), Some(reply_to.as_str()));
        prop_assert_eq!(back.addressing().relates_to.as_deref(), Some(relates_to.as_str()));
        prop_assert_eq!(back.body().name.as_str(), body_name.as_str());
        prop_assert_eq!(back.body().text.as_str(), body_text.as_str());
        prop_assert_eq!(back.body().attribute("a"), Some(attr.as_str()));
    }

    #[test]
    fn serialization_is_stable(
        to in arb_uri(),
        action in arb_uri(),
        text in arb_text(),
    ) {
        // Marshal → demarshal → marshal must be a fixed point, otherwise
        // MAC'd envelope bytes would not be comparable across hops.
        let mut mc = MessageContext::request(to, action);
        mc.body_mut().text = text;
        let once = mc.to_bytes().expect("serialize");
        let back = MessageContext::from_bytes(&once).expect("reparse");
        let twice = back.to_bytes().expect("re-serialize");
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn truncated_envelopes_are_rejected(
        to in arb_uri(),
        action in arb_uri(),
        cut in 1usize..64,
    ) {
        let bytes = MessageContext::request(to, action).to_bytes().expect("serialize");
        let cut = cut.min(bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        prop_assert!(
            MessageContext::from_bytes(truncated).is_err(),
            "an envelope short {cut} bytes must not parse"
        );
    }

    #[test]
    fn corrupted_envelopes_never_panic(
        to in arb_uri(),
        action in arb_uri(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = MessageContext::request(to, action).to_bytes().expect("serialize").to_vec();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        // Corruption may still be well-formed XML (e.g. a flipped byte in
        // text content); the property is that the parser never panics.
        let _ = MessageContext::from_bytes(&bytes);
    }

    #[test]
    fn arbitrary_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = MessageContext::from_bytes(&data);
    }
}
