//! The credit-card issuing bank: the innermost tier of the paper's Fig. 5,
//! replicated with Perpetual-WS.

use perpetual_ws::{PassiveService, PassiveUtils};
use pws_simnet::SimDuration;
use pws_soap::{MessageContext, XmlNode};

/// Validation work the bank does per authorization (the paper uses message
/// digest calculations to simulate processing time).
pub const BANK_PROCESSING: SimDuration = SimDuration::from_micros(1_500);

/// The bank service: validates card/amount pairs deterministically.
#[derive(Debug, Default)]
pub struct Bank {
    validated: u64,
}

impl Bank {
    /// A fresh bank.
    pub fn new() -> Self {
        Bank::default()
    }

    /// Deterministic approval rule: a tiny fraction of amounts is declined
    /// so both reply paths are exercised.
    pub fn approves(amount_cents: u64) -> bool {
        amount_cents % 1000 != 13
    }
}

impl PassiveService for Bank {
    fn handle(&mut self, req: MessageContext, utils: &mut PassiveUtils) -> MessageContext {
        utils.spend(BANK_PROCESSING);
        self.validated += 1;
        let amount: u64 = req.body().text.parse().unwrap_or(0);
        let verdict = if Bank::approves(amount) {
            "approved"
        } else {
            "declined"
        };
        req.reply_with("", XmlNode::new("validateResult").with_text(verdict))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_perpetual::{AppEvent, AppOutput, Executor, GroupId, RequestHandle};

    #[test]
    fn approves_most_amounts() {
        let approved = (0..10_000).filter(|a| Bank::approves(*a)).count();
        assert!(approved > 9_900);
        assert!(!Bank::approves(13));
        assert!(!Bank::approves(1013));
    }

    #[test]
    fn replies_with_verdict() {
        let mut exec = perpetual_ws::ServiceExecutor::new(
            Box::new(perpetual_ws::PassiveHost::new(Box::new(Bank::new()))),
            "bank",
            std::sync::Arc::new(perpetual_ws::runtime::UriMap::default()),
            perpetual_ws::WsCostModel::FREE,
        );
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        let mut req = MessageContext::request("urn:svc:bank", "validate");
        req.addressing_mut().message_id = Some("m1".into());
        req.addressing_mut().reply_to = Some("urn:svc:pge".into());
        req.body_mut().text = "4200".into();
        exec.on_event(
            AppEvent::Request {
                handle: RequestHandle {
                    caller: GroupId(0),
                    req_no: 0,
                },
                payload: req.to_bytes().unwrap(),
            },
            &mut out,
        );
        let reply = out
            .cmds()
            .iter()
            .find_map(|c| match c {
                pws_perpetual::AppCmd::Reply { payload, .. } => {
                    Some(MessageContext::from_bytes(payload).unwrap())
                }
                _ => None,
            })
            .expect("bank replied");
        assert_eq!(reply.body().text, "approved");
    }
}
