//! The bookstore: the front tier of Fig. 5 — a poll-driven Perpetual-WS
//! service (unreplicated, like the paper's Tomcat deployment) that serves
//! the twelve TPC-W pages and calls the PGE asynchronously on Buy Confirm.

use crate::db::{page_cost, Db};
use crate::model::Interaction;
use perpetual_ws::{CallToken, Poll, Service, ServiceCtx, TxnService, WsEvent};
use pws_soap::{MessageContext, XmlNode};
use std::collections::HashMap;

/// The bookstore service.
#[derive(Debug)]
pub struct Bookstore {
    db: Db,
    pge_uri: String,
    /// Divisor on the emulated DB page costs. `1` is the paper
    /// calibration; large values emulate an in-memory front tier where
    /// protocol costs dominate page rendering.
    page_cost_scale: u32,
    /// Buy-confirms awaiting PGE authorization: call token → (original
    /// request, order id). The store keeps serving other pages while
    /// authorizations are in flight (asynchronous messaging, §6.1).
    awaiting: HashMap<CallToken, (MessageContext, u64)>,
    /// Orders placed through cross-shard transaction commits (exactly-once
    /// audit: across all shards this must equal keys-per-commit × commits).
    pub txn_orders: u64,
    /// Cart lines added through cross-shard transaction commits.
    pub txn_cart_lines: u64,
}

impl Bookstore {
    /// A bookstore with `item_count` books, authorizing through service
    /// `pge`.
    pub fn new(item_count: u32, pge: &str) -> Self {
        Bookstore {
            db: Db::new(item_count),
            pge_uri: format!("urn:svc:{pge}"),
            page_cost_scale: 1,
            awaiting: HashMap::new(),
            txn_orders: 0,
            txn_cart_lines: 0,
        }
    }

    /// Read access to the store database (post-run assertions).
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Divides every emulated page cost by `scale` (an in-memory front
    /// tier for protocol-overhead benchmarks).
    pub fn with_page_cost_scale(mut self, scale: u32) -> Self {
        self.page_cost_scale = scale.max(1);
        self
    }

    fn page_reply(req: &MessageContext, page: Interaction, detail: String) -> MessageContext {
        req.reply_with(
            "",
            XmlNode::new(format!("{}Result", page.op_name())).with_text(detail),
        )
    }

    fn serve_page(&mut self, req: MessageContext, ctx: &mut ServiceCtx<'_>) {
        let Some(page) = Interaction::from_op_name(&req.body().name) else {
            // Unknown page: reply with a fault-ish body.
            let reply = req.reply_with("", XmlNode::new("error"));
            ctx.reply(reply, &req);
            return;
        };
        // Multi-customer keys (`a|b`) arriving on the ordinary path (all
        // owned here) serve the first session; cross-shard spreads never
        // reach this code — the transaction shim coordinates them.
        let session: u64 = req
            .body()
            .text
            .split('|')
            .next()
            .unwrap_or("")
            .parse()
            .unwrap_or(0);
        ctx.spend(pws_simnet::SimDuration::from_micros(
            page_cost(page).as_micros() / u64::from(self.page_cost_scale),
        ));
        match page {
            Interaction::ShoppingCart => {
                let item = (ctx.random_u64() % self.db.item_count() as u64) as u32;
                let lines = self.db.add_to_cart(session, item, 1);
                let reply = Bookstore::page_reply(&req, page, format!("lines={lines}"));
                ctx.reply(reply, &req);
            }
            Interaction::BuyConfirm => {
                let (order, total) = self.db.place_order(session);
                let mut pge_req = MessageContext::request(&self.pge_uri, "authorize");
                pge_req.body_mut().name = "authorize".into();
                pge_req.body_mut().text = total.to_string();
                let token = ctx.send(pge_req);
                self.awaiting.insert(token, (req, order));
            }
            Interaction::OrderDisplay => {
                let detail = self
                    .db
                    .last_order(session)
                    .map(|o| format!("order={},total={}", o.id, o.total_cents))
                    .unwrap_or_else(|| "none".to_owned());
                let reply = Bookstore::page_reply(&req, page, detail);
                ctx.reply(reply, &req);
            }
            _ => {
                let reply = Bookstore::page_reply(&req, page, String::new());
                ctx.reply(reply, &req);
            }
        }
    }

    fn settle_authorization(
        &mut self,
        token: CallToken,
        pge_reply: MessageContext,
        ctx: &mut ServiceCtx<'_>,
    ) {
        let Some((orig, order)) = self.awaiting.remove(&token) else {
            return;
        };
        let approved =
            pge_reply.envelope().as_fault().is_none() && pge_reply.body().text == "approved";
        if approved {
            self.db.authorize_order(order);
        }
        let verdict = if approved { "approved" } else { "declined" };
        let reply = Bookstore::page_reply(
            &orig,
            Interaction::BuyConfirm,
            format!("order={order},payment={verdict}"),
        );
        ctx.reply(reply, &orig);
    }
}

impl Service for Bookstore {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Request { request } => self.serve_page(request, ctx),
            WsEvent::Reply { token, reply } => self.settle_authorization(token, reply, ctx),
            WsEvent::Init { .. } | WsEvent::Time { .. } => {}
        }
        Poll::Next
    }
}

impl TxnService for Bookstore {
    /// Commit a multi-customer interaction on this shard's sessions: a
    /// `buyConfirm` places (and settles) one order per local session, a
    /// `shoppingCart` adds one line per local session. Anything else is a
    /// no-op with an empty detail. Deterministic: the cart item derives
    /// from the session id, not the RNG.
    fn txn_execute(&mut self, op: &str, keys: &[String]) -> String {
        let mut details = Vec::new();
        for k in keys {
            let session: u64 = k.parse().unwrap_or(0);
            match op {
                "shoppingCart" => {
                    let item = (session % u64::from(self.db.item_count().max(1))) as u32;
                    let lines = self.db.add_to_cart(session, item, 1);
                    self.txn_cart_lines += 1;
                    details.push(format!("cart:{session}={lines}"));
                }
                "buyConfirm" => {
                    let (order, total) = self.db.place_order(session);
                    // Cross-shard buys settle atomically with the commit
                    // (the 2PC already ordered the decision; no separate
                    // PGE authorization round).
                    self.db.authorize_order(order);
                    self.txn_orders += 1;
                    details.push(format!("order:{session}={order}/{total}"));
                }
                _ => {}
            }
        }
        details.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let b = Bookstore::new(100, "pge");
        assert_eq!(b.db.item_count(), 100);
        assert_eq!(b.pge_uri, "urn:svc:pge");
        assert!(b.awaiting.is_empty());
    }

    #[test]
    fn page_reply_names_result_elements() {
        let mut req = MessageContext::request("urn:svc:bookstore", "home");
        req.addressing_mut().message_id = Some("m".into());
        req.addressing_mut().reply_to = Some("urn:rbe".into());
        let r = Bookstore::page_reply(&req, Interaction::Home, "x".into());
        assert_eq!(r.body().name, "homeResult");
        assert_eq!(r.body().text, "x");
        assert_eq!(r.addressing().relates_to.as_deref(), Some("m"));
    }
}
