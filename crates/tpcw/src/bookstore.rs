//! The bookstore: the front tier of Fig. 5 — an *active* Perpetual-WS
//! service (unreplicated, like the paper's Tomcat deployment) that serves
//! the twelve TPC-W pages and calls the PGE asynchronously on Buy Confirm.

use crate::db::{page_cost, Db};
use crate::model::Interaction;
use perpetual_ws::{ActiveService, Incoming, MessageHandler, ServiceApi, Utils};
use pws_soap::{MessageContext, XmlNode};
use std::collections::HashMap;

/// The bookstore service.
#[derive(Debug)]
pub struct Bookstore {
    db: Db,
    pge_uri: String,
}

impl Bookstore {
    /// A bookstore with `item_count` books, authorizing through service
    /// `pge`.
    pub fn new(item_count: u32, pge: &str) -> Self {
        Bookstore {
            db: Db::new(item_count),
            pge_uri: format!("urn:svc:{pge}"),
        }
    }

    fn page_reply(req: &MessageContext, page: Interaction, detail: String) -> MessageContext {
        req.reply_with(
            "",
            XmlNode::new(format!("{}Result", page.op_name())).with_text(detail),
        )
    }
}

impl ActiveService for Bookstore {
    fn run(mut self: Box<Self>, api: &mut ServiceApi) {
        // Buy-confirms awaiting PGE authorization: pge msg id → (original
        // request, order id). The store keeps serving other pages while
        // authorizations are in flight (asynchronous messaging, §6.1).
        let mut awaiting: HashMap<String, (MessageContext, u64)> = HashMap::new();
        loop {
            match api.receive_any() {
                Some(Incoming::Request(req)) => {
                    let Some(page) = Interaction::from_op_name(&req.body().name) else {
                        // Unknown page: reply with a fault-ish body.
                        let reply = req.reply_with("", XmlNode::new("error"));
                        api.send_reply(reply, &req);
                        continue;
                    };
                    let session: u64 = req.body().text.parse().unwrap_or(0);
                    api.spend(page_cost(page));
                    match page {
                        Interaction::ShoppingCart => {
                            let item = (api.random_u64() % self.db.item_count() as u64) as u32;
                            let lines = self.db.add_to_cart(session, item, 1);
                            let reply = Bookstore::page_reply(&req, page, format!("lines={lines}"));
                            api.send_reply(reply, &req);
                        }
                        Interaction::BuyConfirm => {
                            let (order, total) = self.db.place_order(session);
                            let mut pge_req = MessageContext::request(&self.pge_uri, "authorize");
                            pge_req.body_mut().name = "authorize".into();
                            pge_req.body_mut().text = total.to_string();
                            let id = api.send(pge_req);
                            awaiting.insert(id, (req, order));
                        }
                        Interaction::OrderDisplay => {
                            let detail = self
                                .db
                                .last_order(session)
                                .map(|o| format!("order={},total={}", o.id, o.total_cents))
                                .unwrap_or_else(|| "none".to_owned());
                            let reply = Bookstore::page_reply(&req, page, detail);
                            api.send_reply(reply, &req);
                        }
                        _ => {
                            let reply = Bookstore::page_reply(&req, page, String::new());
                            api.send_reply(reply, &req);
                        }
                    }
                }
                Some(Incoming::Reply(pge_reply)) => {
                    let Some(rid) = pge_reply.addressing().relates_to.clone() else {
                        continue;
                    };
                    let Some((orig, order)) = awaiting.remove(&rid) else {
                        continue;
                    };
                    let approved = pge_reply.envelope().as_fault().is_none()
                        && pge_reply.body().text == "approved";
                    if approved {
                        self.db.authorize_order(order);
                    }
                    let verdict = if approved { "approved" } else { "declined" };
                    let reply = Bookstore::page_reply(
                        &orig,
                        Interaction::BuyConfirm,
                        format!("order={order},payment={verdict}"),
                    );
                    api.send_reply(reply, &orig);
                }
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let b = Bookstore::new(100, "pge");
        assert_eq!(b.db.item_count(), 100);
        assert_eq!(b.pge_uri, "urn:svc:pge");
    }

    #[test]
    fn page_reply_names_result_elements() {
        let mut req = MessageContext::request("urn:svc:bookstore", "home");
        req.addressing_mut().message_id = Some("m".into());
        req.addressing_mut().reply_to = Some("urn:rbe".into());
        let r = Bookstore::page_reply(&req, Interaction::Home, "x".into());
        assert_eq!(r.body().name, "homeResult");
        assert_eq!(r.body().text, "x");
        assert_eq!(r.addressing().relates_to.as_deref(), Some("m"));
    }
}
