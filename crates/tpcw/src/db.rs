//! The bookstore's database: in-memory tables plus a MySQL-like per-query
//! latency model (the paper co-locates a MySQL image database with the
//! bookstore; queries, not the network, dominate page cost).

use crate::model::Interaction;
use pws_simnet::SimDuration;
use std::collections::HashMap;

/// An item (book) row.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Item id.
    pub id: u32,
    /// Title.
    pub title: String,
    /// Price in cents.
    pub price_cents: u64,
    /// Remaining stock.
    pub stock: u32,
}

/// An order row.
#[derive(Debug, Clone, PartialEq)]
pub struct Order {
    /// Order id.
    pub id: u64,
    /// Session that placed it.
    pub session: u64,
    /// (item, quantity) lines.
    pub lines: Vec<(u32, u32)>,
    /// Total in cents.
    pub total_cents: u64,
    /// Whether payment was authorized.
    pub authorized: bool,
}

/// The store database.
#[derive(Debug)]
pub struct Db {
    items: Vec<Item>,
    carts: HashMap<u64, Vec<(u32, u32)>>,
    orders: Vec<Order>,
    next_order: u64,
}

impl Db {
    /// A database populated with `item_count` books (TPC-W scales by item
    /// count; the paper's image database is modeled purely as query cost).
    pub fn new(item_count: u32) -> Self {
        let items = (0..item_count)
            .map(|id| Item {
                id,
                title: format!("Book #{id}"),
                price_cents: 500 + (id as u64 * 37) % 4500,
                stock: 1000,
            })
            .collect();
        Db {
            items,
            carts: HashMap::new(),
            orders: Vec::new(),
            next_order: 1,
        }
    }

    /// Number of items.
    pub fn item_count(&self) -> u32 {
        self.items.len() as u32
    }

    /// Looks up an item.
    pub fn item(&self, id: u32) -> Option<&Item> {
        self.items.get(id as usize)
    }

    /// Adds an item to a session's cart; returns the new line count.
    pub fn add_to_cart(&mut self, session: u64, item: u32, qty: u32) -> usize {
        let item_count = self.item_count().max(1);
        let cart = self.carts.entry(session).or_default();
        cart.push((item % item_count, qty.max(1)));
        cart.len()
    }

    /// The session's cart.
    pub fn cart(&self, session: u64) -> &[(u32, u32)] {
        self.carts.get(&session).map_or(&[], Vec::as_slice)
    }

    /// Converts the session's cart into an order; returns its id and total.
    /// An empty cart produces a one-line default order, as the TPC-W Java
    /// implementation does for direct buy-confirm hits.
    pub fn place_order(&mut self, session: u64) -> (u64, u64) {
        let mut lines = self.carts.remove(&session).unwrap_or_default();
        if lines.is_empty() {
            lines.push((session as u32 % self.item_count().max(1), 1));
        }
        let total: u64 = lines
            .iter()
            .map(|(item, qty)| self.item(*item).map_or(999, |i| i.price_cents) * *qty as u64)
            .sum();
        let id = self.next_order;
        self.next_order += 1;
        for (item, qty) in &lines {
            if let Some(row) = self.items.get_mut(*item as usize) {
                row.stock = row.stock.saturating_sub(*qty);
            }
        }
        self.orders.push(Order {
            id,
            session,
            lines,
            total_cents: total,
            authorized: false,
        });
        (id, total)
    }

    /// Marks an order authorized (after the PGE call).
    pub fn authorize_order(&mut self, order_id: u64) -> bool {
        match self.orders.iter_mut().find(|o| o.id == order_id) {
            Some(o) => {
                o.authorized = true;
                true
            }
            None => false,
        }
    }

    /// The most recent order of a session, if any.
    pub fn last_order(&self, session: u64) -> Option<&Order> {
        self.orders.iter().rev().find(|o| o.session == session)
    }

    /// Number of orders placed.
    pub fn order_count(&self) -> usize {
        self.orders.len()
    }

    /// Number of authorized orders.
    pub fn authorized_count(&self) -> usize {
        self.orders.iter().filter(|o| o.authorized).count()
    }
}

/// MySQL-like CPU/IO time the bookstore spends serving each page type
/// (aggregate of its queries; heavier listing pages cost more).
pub fn page_cost(i: Interaction) -> SimDuration {
    use Interaction::*;
    SimDuration::from_micros(match i {
        Home => 18_000,
        NewProducts => 42_000,
        BestSellers => 60_000,
        ProductDetail => 22_000,
        SearchRequest => 8_000,
        SearchResults => 48_000,
        ShoppingCart => 24_000,
        CustomerRegistration => 12_000,
        BuyRequest => 30_000,
        BuyConfirm => 36_000,
        OrderInquiry => 9_000,
        OrderDisplay => 28_000,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cart_and_order_flow() {
        let mut db = Db::new(100);
        assert_eq!(db.item_count(), 100);
        assert_eq!(db.cart(7).len(), 0);
        db.add_to_cart(7, 3, 2);
        db.add_to_cart(7, 5, 1);
        assert_eq!(db.cart(7).len(), 2);
        let stock_before = db.item(3).unwrap().stock;
        let (order, total) = db.place_order(7);
        assert!(total > 0);
        assert_eq!(db.cart(7).len(), 0, "cart cleared");
        assert_eq!(db.item(3).unwrap().stock, stock_before - 2);
        assert!(!db.last_order(7).unwrap().authorized);
        assert!(db.authorize_order(order));
        assert!(db.last_order(7).unwrap().authorized);
        assert_eq!(db.order_count(), 1);
        assert_eq!(db.authorized_count(), 1);
        assert!(!db.authorize_order(999));
    }

    #[test]
    fn empty_cart_buy_confirm_still_orders() {
        let mut db = Db::new(10);
        let (id, total) = db.place_order(42);
        assert_eq!(id, 1);
        assert!(total > 0);
        assert_eq!(db.order_count(), 1);
    }

    #[test]
    fn page_costs_are_tens_of_millis() {
        for i in Interaction::ALL {
            let c = page_cost(i);
            assert!(c >= SimDuration::from_millis(5), "{i:?}");
            assert!(c <= SimDuration::from_millis(100), "{i:?}");
        }
    }
}
