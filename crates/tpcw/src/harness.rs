//! Assembles the full TPC-W deployment of Fig. 5 and measures WIPS.

use crate::bank::Bank;
use crate::bookstore::Bookstore;
use crate::pge::Pge;
use crate::rbe::Rbe;
use perpetual_ws::SystemBuilder;
use pws_simnet::SimDuration;

/// Parameters of one TPC-W run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpcwConfig {
    /// Bookstore replica count (paper: 1, an unreplicated Tomcat-like
    /// front tier; replicating it makes the read-only fast path earn its
    /// keep — a browse page then needs a `2f + 1` reply quorum instead of
    /// full agreement).
    pub n_bookstore: u32,
    /// PGE replica count (paper: 1, 4, 7, 10).
    pub n_pge: u32,
    /// Bank replica count (paper keeps `n_bank = n_pge`).
    pub n_bank: u32,
    /// Number of remote browser emulators.
    pub rbes: u32,
    /// Measurement window (after warm-up).
    pub duration: SimDuration,
    /// Warm-up time excluded from WIPS.
    pub warmup: SimDuration,
    /// Use the synchronous PGE/Bank variants (§6.4 comparison).
    pub sync_pge: bool,
    /// Mean think time (TPC-W uses 7 s).
    pub think_mean: SimDuration,
    /// Bookstore shard count: 1 is the paper's single front tier; more
    /// partitions the store by customer (RBE session) key across
    /// independently-agreeing groups, so the whole TPC-W mix fans out.
    pub bookstore_shards: u32,
    /// Route browse pages down the read-only fast path (mutating pages —
    /// cart updates and order placement — always stay ordered).
    pub read_only: bool,
    /// Make buy-confirm and shopping-cart interactions *multi-customer*:
    /// each names the browser's own session plus a partner session owned
    /// by a different shard, so the sharded store must run them as
    /// cross-shard two-phase commits (requires `bookstore_shards >= 2`).
    pub cross_shard_buys: bool,
    /// Divisor on the emulated DB page costs (1 = paper calibration).
    /// Large values emulate an in-memory front tier where protocol
    /// overhead, not page rendering, dominates interaction latency.
    pub page_cost_scale: u32,
    /// Execute batches speculatively at pre-prepare on every replicated
    /// service.
    pub speculative: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for TpcwConfig {
    fn default() -> Self {
        TpcwConfig {
            n_bookstore: 1,
            n_pge: 4,
            n_bank: 4,
            rbes: 28,
            duration: SimDuration::from_secs(120),
            warmup: SimDuration::from_secs(20),
            sync_pge: false,
            think_mean: SimDuration::from_secs(7),
            bookstore_shards: 1,
            read_only: false,
            cross_shard_buys: false,
            page_cost_scale: 1,
            speculative: false,
            seed: 2007,
        }
    }
}

/// Results of one TPC-W run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpcwResult {
    /// Web interactions per second over the measurement window.
    pub wips: f64,
    /// Total interactions measured.
    pub interactions: u64,
    /// Interactions that triggered PGE calls.
    pub pge_interactions: u64,
    /// Fraction of traffic hitting the PGE.
    pub pge_share: f64,
    /// Read-only requests served on the fast path (`clbft.ro.served`).
    pub ro_served: u64,
    /// Read-only calls demoted to the ordered path (`clbft.ro.fallbacks`).
    pub ro_fallbacks: u64,
    /// Cross-shard transactions committed (`clbft.txn.committed`).
    pub txn_committed: u64,
    /// Cross-shard transactions aborted (`clbft.txn.aborted`).
    pub txn_aborted: u64,
}

/// Runs the TPC-W benchmark once.
pub fn run_tpcw(cfg: TpcwConfig) -> TpcwResult {
    let mut b = SystemBuilder::new(cfg.seed);
    b.speculative(cfg.speculative);
    let shards = cfg.bookstore_shards.max(1);
    let n_store = cfg.n_bookstore.max(1);
    let page_scale = cfg.page_cost_scale.max(1);
    let cross = cfg.cross_shard_buys && shards > 1;
    if cross {
        // Transactional sharded front tier: multi-customer buy pages
        // become two-phase commits coordinated through the shards' own
        // agreement logs.
        b.sharded_txn("bookstore", shards, n_store, move |_, _| {
            Box::new(Bookstore::new(1000, "pge").with_page_cost_scale(page_scale))
        });
    } else if shards > 1 {
        // Sharded front tier: the store is partitioned by customer
        // (session) key, each shard an independently-agreeing group
        // running its own order book — the scale-out topology.
        b.sharded("bookstore", shards, n_store, move |_, _| {
            Box::new(Bookstore::new(1000, "pge").with_page_cost_scale(page_scale))
        });
    } else {
        // Bookstore front tier (paper: unreplicated, Tomcat-like).
        b.service("bookstore", n_store, move |_| {
            Box::new(Bookstore::new(1000, "pge").with_page_cost_scale(page_scale))
        });
    }
    let sync_pge = cfg.sync_pge;
    b.service("pge", cfg.n_pge, move |_| {
        if sync_pge {
            Box::new(Pge::synchronous("bank"))
        } else {
            Box::new(Pge::new("bank"))
        }
    });
    b.passive_service("bank", cfg.n_bank, |_| Box::new(Bank::new()));
    for i in 0..cfg.rbes {
        let think = cfg.think_mean;
        let read_only = cfg.read_only;
        b.custom_client(&format!("rbe{i}"), move |core, uris| {
            // An RBE's whole session keys on its session id, so its owning
            // shard is fixed for the session (unsharded stores route to
            // their single group).
            let (_, bookstore) = uris
                .route("urn:svc:bookstore", &i.to_string())
                .expect("bookstore routes");
            let mut rbe = Rbe::new(core, bookstore, i as u64, think).with_read_only(read_only);
            if cross {
                rbe = rbe.with_cross_shard(shards);
            }
            Box::new(rbe)
        });
    }
    let mut sys = b.build();
    sys.run_for(cfg.warmup);
    sys.sim_mut().metrics_mut().reset();
    sys.run_for(cfg.duration);
    let interactions = sys.metrics().counter("tpcw.web_interactions");
    let pge_interactions = sys.metrics().counter("tpcw.pge_interactions");
    TpcwResult {
        wips: interactions as f64 / cfg.duration.as_secs_f64(),
        interactions,
        pge_interactions,
        pge_share: if interactions == 0 {
            0.0
        } else {
            pge_interactions as f64 / interactions as f64
        },
        ro_served: sys.metrics().counter("clbft.ro.served"),
        ro_fallbacks: sys.metrics().counter("clbft.ro.fallbacks"),
        txn_committed: sys.metrics().counter("clbft.txn.committed"),
        txn_aborted: sys.metrics().counter("clbft.txn.aborted"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(n: u32, sync_pge: bool, rbes: u32) -> TpcwConfig {
        TpcwConfig {
            n_bookstore: 1,
            n_pge: n,
            n_bank: n,
            rbes,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(10),
            sync_pge,
            think_mean: SimDuration::from_secs(7),
            bookstore_shards: 1,
            read_only: false,
            cross_shard_buys: false,
            page_cost_scale: 1,
            speculative: false,
            seed: 7,
        }
    }

    #[test]
    fn smoke_run_produces_interactions() {
        let r = run_tpcw(small(1, false, 7));
        assert!(r.interactions > 20, "got {}", r.interactions);
        assert!(r.wips > 0.3, "wips={}", r.wips);
    }

    #[test]
    fn replicated_pge_still_serves() {
        let r = run_tpcw(small(4, false, 7));
        assert!(r.interactions > 20, "got {}", r.interactions);
    }

    #[test]
    fn pge_share_is_in_band_over_long_runs() {
        let mut cfg = small(1, false, 14);
        cfg.duration = SimDuration::from_secs(400);
        let r = run_tpcw(cfg);
        assert!(
            (0.02..=0.13).contains(&r.pge_share),
            "pge share {} out of band ({} of {})",
            r.pge_share,
            r.pge_interactions,
            r.interactions
        );
    }

    #[test]
    fn read_only_browse_pages_take_the_fast_path() {
        let mut cfg = small(1, false, 7);
        cfg.read_only = true;
        let r = run_tpcw(cfg);
        assert!(r.interactions > 20, "got {}", r.interactions);
        assert!(r.ro_served > 0, "no fast-path reads served");
    }

    #[test]
    fn read_only_against_a_replicated_bookstore() {
        // A 4-replica store must assemble a 2f+1 = 3 matching-reply quorum
        // for every browse page.
        let mut cfg = small(1, false, 7);
        cfg.n_bookstore = 4;
        cfg.read_only = true;
        let r = run_tpcw(cfg);
        assert!(r.interactions > 20, "got {}", r.interactions);
        assert!(
            r.ro_served > 0,
            "replicated store never served a fast-path read"
        );
    }

    #[test]
    fn speculative_mix_still_completes() {
        let mut cfg = small(4, false, 7);
        cfg.speculative = true;
        let r = run_tpcw(cfg);
        assert!(r.interactions > 20, "got {}", r.interactions);
    }

    #[test]
    fn sync_variant_also_completes() {
        let r = run_tpcw(small(4, true, 7));
        assert!(r.interactions > 20, "got {}", r.interactions);
    }

    #[test]
    fn sharded_bookstore_drives_every_shard() {
        // Partition the store by customer key across two shards; with
        // enough concurrent sessions the rendezvous router must land
        // traffic on both, and the mix still completes end to end.
        let mut cfg = small(1, false, 10);
        cfg.bookstore_shards = 2;
        let mut b = SystemBuilder::new(cfg.seed);
        b.sharded("bookstore", 2, 1, |_, _| {
            Box::new(Bookstore::new(1000, "pge"))
        });
        b.service("pge", 1, |_| Box::new(Pge::new("bank")));
        b.passive_service("bank", 1, |_| Box::new(Bank::new()));
        for i in 0..cfg.rbes {
            let think = cfg.think_mean;
            b.custom_client(&format!("rbe{i}"), move |core, uris| {
                let (_, bookstore) = uris
                    .route("urn:svc:bookstore", &i.to_string())
                    .expect("bookstore routes");
                Box::new(Rbe::new(core, bookstore, i as u64, think))
            });
        }
        let mut sys = b.build();
        sys.run_for(SimDuration::from_secs(90));
        let interactions = sys.metrics().counter("tpcw.web_interactions");
        assert!(interactions > 20, "got {interactions}");
        // Bookstore shards registered first: groups g0 and g1. Both must
        // have executed agreed requests (the per-group exec metrics).
        for g in 0..2 {
            let served = sys.metrics().counter(&format!("clbft.exec.g{g}.requests"));
            assert!(served > 0, "shard g{g} never served");
        }

        // The harness-level config reaches the same topology.
        let r = run_tpcw(cfg);
        assert!(r.interactions > 20, "harness run got {}", r.interactions);
    }

    #[test]
    fn cross_shard_buys_update_inventory_exactly_once() {
        use perpetual_ws::{ServiceExecutor, TxnShim};

        // Two store shards, multi-customer buys: every buy-confirm and
        // shopping-cart page names the browser's session plus a partner on
        // the other shard, so each one runs as a two-phase commit.
        let rbes = 10u32;
        let mut b = SystemBuilder::new(4242);
        b.sharded_txn("bookstore", 2, 1, |_, _| {
            Box::new(Bookstore::new(1000, "pge"))
        });
        b.service("pge", 1, |_| Box::new(Pge::new("bank")));
        b.passive_service("bank", 1, |_| Box::new(Bank::new()));
        for i in 0..rbes {
            b.custom_client(&format!("rbe{i}"), move |core, uris| {
                let (_, bookstore) = uris
                    .route("urn:svc:bookstore", &i.to_string())
                    .expect("bookstore routes");
                let rbe = Rbe::new(core, bookstore, i as u64, SimDuration::from_secs(7));
                Box::new(rbe.with_cross_shard(2))
            });
        }
        let mut sys = b.build();
        sys.run_for(SimDuration::from_secs(300));
        let committed = sys.metrics().counter("clbft.txn.committed");
        assert!(committed > 0, "no cross-shard transactions committed");

        // Exactly-once inventory audit: a committed cross-shard buy places
        // one settled order on each of its two shards, and a committed
        // cross-shard cart page adds one line per shard. Sum the per-shard
        // transactional counters and square them against what the browsers
        // observed (each browser has at most one interaction still in
        // flight at the end of the run).
        let mut orders = 0u64;
        let mut cart_lines = 0u64;
        for shard in 0..2u32 {
            let shim = sys
                .replica_mut(&format!("bookstore#{shard}"), 0)
                .expect("shard replica")
                .executor_mut::<ServiceExecutor>()
                .expect("service executor")
                .service_mut::<TxnShim>()
                .expect("txn shim");
            let store = shim.inner_mut::<Bookstore>().expect("bookstore inner");
            orders += store.txn_orders;
            cart_lines += store.txn_cart_lines;
        }
        let mut seen = 0u64;
        for i in 0..rbes {
            let node = sys.client_node(&format!("rbe{i}"));
            seen += sys
                .sim_mut()
                .node_mut::<Rbe>(node)
                .expect("rbe node")
                .cross_buy_commits;
        }
        assert!(seen > 0, "no browser observed a committed cross-shard buy");
        assert!(
            orders >= 2 * seen,
            "lost updates: {orders} orders for {seen} observed commits"
        );
        assert!(
            orders <= 2 * (seen + u64::from(rbes)),
            "duplicate updates: {orders} orders for {seen} observed commits"
        );
        assert!(cart_lines > 0, "no cross-shard cart lines committed");

        // And the harness-level switch reaches the same topology.
        let mut cfg = small(1, false, 8);
        cfg.bookstore_shards = 2;
        cfg.cross_shard_buys = true;
        let r = run_tpcw(cfg);
        assert!(r.interactions > 20, "harness run got {}", r.interactions);
        assert!(r.txn_committed > 0, "harness run committed no txns");
    }
}
