//! # pws-tpcw
//!
//! The TPC-W e-commerce macro-benchmark of the paper's §6.1, rebuilt on
//! Perpetual-WS. The deployment mirrors the paper's Fig. 5:
//!
//! ```text
//! RBEs --"HTTP"--> Bookstore(+DB) --Perpetual-WS--> PGE --Perpetual-WS--> Bank
//! ```
//!
//! * [`model`] — the twelve TPC-W web interactions and a TPC-W-derived
//!   Markov transition matrix whose steady state sends 5–10 % of traffic to
//!   the payment gateway, as the paper reports.
//! * [`db`] — the bookstore's in-memory database (items, carts, orders)
//!   with a per-query latency model standing in for MySQL.
//! * [`bookstore`] — the bookstore as an *active* Perpetual-WS service
//!   (unreplicated, n = 1, like the paper's Tomcat servlet) that issues
//!   asynchronous `authorize` calls to the PGE on Buy Confirm.
//! * [`pge`] / [`bank`] — the replicated Payment Gateway Emulator and the
//!   credit-card bank; the PGE exists in asynchronous (default) and
//!   synchronous variants for the §6.4 comparison.
//! * [`rbe`] — remote browser emulators with exponential think times.
//! * [`harness`] — assembles a full deployment and measures WIPS (web
//!   interactions per second), regenerating Fig. 6.

//!
//! See `docs/ARCHITECTURE.md` at the repository root for how this crate
//! slots into the full Perpetual-WS stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod bookstore;
pub mod db;
pub mod harness;
pub mod model;
pub mod pge;
pub mod rbe;

pub use harness::{run_tpcw, TpcwConfig, TpcwResult};
pub use model::Interaction;
