//! The twelve TPC-W web interactions and the browsing model.
//!
//! The paper: "The benchmark simulates the operation of an online bookstore
//! with twelve distinct web pages ... Around 5-10% of the total traffic
//! received by the bookstore results in requests being issued to an
//! external Payment Gateway Emulator" (§6.1). The transition matrix below
//! is derived from the TPC-W shopping mix, tuned so the steady-state Buy
//! Confirm share sits inside that 5–10 % band (verified by a unit test).

use pws_simnet::DetRng;

/// A TPC-W web interaction (page).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Interaction {
    /// Store home page.
    Home,
    /// New products listing.
    NewProducts,
    /// Best sellers listing.
    BestSellers,
    /// Product detail page.
    ProductDetail,
    /// Search form.
    SearchRequest,
    /// Search results.
    SearchResults,
    /// Shopping cart view/update.
    ShoppingCart,
    /// Customer registration.
    CustomerRegistration,
    /// Buy request (checkout form).
    BuyRequest,
    /// Buy confirm — triggers the PGE authorization call.
    BuyConfirm,
    /// Order inquiry form.
    OrderInquiry,
    /// Order display.
    OrderDisplay,
}

impl Interaction {
    /// All twelve interactions.
    pub const ALL: [Interaction; 12] = [
        Interaction::Home,
        Interaction::NewProducts,
        Interaction::BestSellers,
        Interaction::ProductDetail,
        Interaction::SearchRequest,
        Interaction::SearchResults,
        Interaction::ShoppingCart,
        Interaction::CustomerRegistration,
        Interaction::BuyRequest,
        Interaction::BuyConfirm,
        Interaction::OrderInquiry,
        Interaction::OrderDisplay,
    ];

    /// Wire name used in SOAP bodies.
    pub fn op_name(self) -> &'static str {
        match self {
            Interaction::Home => "home",
            Interaction::NewProducts => "newProducts",
            Interaction::BestSellers => "bestSellers",
            Interaction::ProductDetail => "productDetail",
            Interaction::SearchRequest => "searchRequest",
            Interaction::SearchResults => "searchResults",
            Interaction::ShoppingCart => "shoppingCart",
            Interaction::CustomerRegistration => "customerRegistration",
            Interaction::BuyRequest => "buyRequest",
            Interaction::BuyConfirm => "buyConfirm",
            Interaction::OrderInquiry => "orderInquiry",
            Interaction::OrderDisplay => "orderDisplay",
        }
    }

    /// Parses a wire name.
    pub fn from_op_name(s: &str) -> Option<Interaction> {
        Interaction::ALL.iter().copied().find(|i| i.op_name() == s)
    }

    /// Whether this interaction triggers a payment-gateway call.
    pub fn hits_pge(self) -> bool {
        self == Interaction::BuyConfirm
    }

    /// Whether this interaction leaves the bookstore unchanged and can
    /// travel the read-only fast path. Only the cart update and the order
    /// placement mutate store state; everything else renders from it.
    pub fn is_read_only(self) -> bool {
        !matches!(self, Interaction::ShoppingCart | Interaction::BuyConfirm)
    }
}

/// Transition weights out of each page (destinations, weight per mille).
/// Shape follows the TPC-W shopping mix: browsing pages dominate, a
/// purchase funnel Cart → BuyRequest → BuyConfirm exists from every cart
/// visit, and completed orders return home.
fn transitions(from: Interaction) -> &'static [(Interaction, u32)] {
    use Interaction::*;
    match from {
        Home => &[
            (SearchRequest, 250),
            (NewProducts, 180),
            (BestSellers, 180),
            (ProductDetail, 220),
            (OrderInquiry, 40),
            (ShoppingCart, 130),
        ],
        NewProducts => &[(ProductDetail, 600), (Home, 250), (SearchRequest, 150)],
        BestSellers => &[(ProductDetail, 600), (Home, 250), (SearchRequest, 150)],
        ProductDetail => &[
            (ShoppingCart, 450),
            (ProductDetail, 130),
            (SearchRequest, 150),
            (Home, 270),
        ],
        SearchRequest => &[(SearchResults, 900), (Home, 100)],
        SearchResults => &[(ProductDetail, 500), (SearchRequest, 250), (Home, 250)],
        ShoppingCart => &[
            (CustomerRegistration, 650),
            (ShoppingCart, 100),
            (Home, 250),
        ],
        CustomerRegistration => &[(BuyRequest, 900), (Home, 100)],
        BuyRequest => &[(BuyConfirm, 850), (Home, 150)],
        BuyConfirm => &[(Home, 1000)],
        OrderInquiry => &[(OrderDisplay, 800), (Home, 200)],
        OrderDisplay => &[(Home, 1000)],
    }
}

/// Samples the next page after `from`.
pub fn next_interaction(from: Interaction, rng: &mut DetRng) -> Interaction {
    let table = transitions(from);
    let total: u32 = table.iter().map(|(_, w)| w).sum();
    let mut pick = rng.below(total as u64) as u32;
    for (dest, w) in table {
        if pick < *w {
            return *dest;
        }
        pick -= w;
    }
    table.last().expect("nonempty").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn twelve_distinct_pages() {
        assert_eq!(Interaction::ALL.len(), 12);
        let names: std::collections::HashSet<_> =
            Interaction::ALL.iter().map(|i| i.op_name()).collect();
        assert_eq!(names.len(), 12);
        for i in Interaction::ALL {
            assert_eq!(Interaction::from_op_name(i.op_name()), Some(i));
        }
        assert_eq!(Interaction::from_op_name("bogus"), None);
    }

    #[test]
    fn transition_weights_are_per_mille() {
        for i in Interaction::ALL {
            let total: u32 = transitions(i).iter().map(|(_, w)| w).sum();
            assert_eq!(total, 1000, "{i:?}");
        }
    }

    #[test]
    fn steady_state_pge_share_is_5_to_10_percent() {
        // Walk the chain long enough for the empirical distribution to
        // converge; the paper's claim is 5–10 % of interactions hit the PGE.
        let mut rng = DetRng::derive(42, 0);
        let mut page = Interaction::Home;
        let mut counts: HashMap<Interaction, u64> = HashMap::new();
        let steps = 200_000u64;
        for _ in 0..steps {
            page = next_interaction(page, &mut rng);
            *counts.entry(page).or_insert(0) += 1;
        }
        let pge = counts[&Interaction::BuyConfirm] as f64 / steps as f64;
        assert!(
            (0.05..=0.10).contains(&pge),
            "BuyConfirm share = {:.3} outside the paper's 5-10% band",
            pge
        );
        // Every page is reachable.
        for i in Interaction::ALL {
            assert!(
                counts.get(&i).copied().unwrap_or(0) > 0,
                "{i:?} unreachable"
            );
        }
    }

    #[test]
    fn only_buy_confirm_hits_pge() {
        assert!(Interaction::BuyConfirm.hits_pge());
        assert_eq!(Interaction::ALL.iter().filter(|i| i.hits_pge()).count(), 1);
    }

    #[test]
    fn exactly_the_two_mutating_pages_are_not_read_only() {
        let writers: Vec<_> = Interaction::ALL
            .iter()
            .copied()
            .filter(|i| !i.is_read_only())
            .collect();
        assert_eq!(
            writers,
            vec![Interaction::ShoppingCart, Interaction::BuyConfirm]
        );
    }
}
