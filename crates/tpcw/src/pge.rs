//! The Payment Gateway Emulator (PGE): the middle tier of Fig. 5,
//! replicated with Perpetual-WS. "The PGE calls another Perpetual-WS Web
//! Service that simulates the actions of a credit card issuing bank"
//! (§6.1). The asynchronous variant keeps serving new authorizations while
//! bank calls are in flight; the synchronous variant waits per request
//! (incoming authorizations queue meanwhile, via the wait set) — the
//! comparison behind the up-to-4 % gain reported in §6.4.

use perpetual_ws::{CallToken, Poll, Service, ServiceCtx, WsEvent};
use pws_simnet::SimDuration;
use pws_soap::{MessageContext, XmlNode};
use std::collections::BTreeMap;

/// Local bookkeeping cost per authorization. The paper disregarded the
/// TPC-W minimum execution time for the PGE "to ensure that the effects of
/// replication were not masked"; we keep it similarly small.
pub const PGE_PROCESSING: SimDuration = SimDuration::from_micros(800);

/// The payment gateway service.
#[derive(Debug)]
pub struct Pge {
    bank_uri: String,
    synchronous: bool,
    /// Authorizations whose bank call is in flight, by call token.
    pending: BTreeMap<CallToken, MessageContext>,
}

impl Pge {
    /// An asynchronous PGE forwarding to service `bank`.
    pub fn new(bank: &str) -> Self {
        Pge {
            bank_uri: format!("urn:svc:{bank}"),
            synchronous: false,
            pending: BTreeMap::new(),
        }
    }

    /// The synchronous variant (§6.4 comparison).
    pub fn synchronous(bank: &str) -> Self {
        Pge {
            bank_uri: format!("urn:svc:{bank}"),
            synchronous: true,
            pending: BTreeMap::new(),
        }
    }

    fn bank_request(&self, amount: &str) -> MessageContext {
        let mut mc = MessageContext::request(&self.bank_uri, "validate");
        mc.body_mut().name = "validate".into();
        mc.body_mut().text = amount.into();
        mc
    }

    fn verdict_reply(original: &MessageContext, bank_reply: &MessageContext) -> MessageContext {
        let verdict =
            if bank_reply.envelope().as_fault().is_none() && bank_reply.body().text == "approved" {
                "approved"
            } else {
                "declined"
            };
        original.reply_with("", XmlNode::new("authorizeResult").with_text(verdict))
    }

    /// The continuation: the synchronous variant admits only its one
    /// outstanding bank reply (new requests queue); the asynchronous
    /// variant takes whatever the agreed order delivers next. `pending` is
    /// a BTreeMap so the (at most one, for sync) token choice is
    /// deterministic and identical across replicas.
    fn continuation(&self) -> Poll {
        if self.synchronous {
            match self.pending.keys().next() {
                Some(&token) => Poll::reply(token),
                None => Poll::request(),
            }
        } else {
            Poll::Next
        }
    }
}

impl Service for Pge {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Request { request } => {
                ctx.spend(PGE_PROCESSING);
                let token = ctx.send(self.bank_request(&request.body().text));
                self.pending.insert(token, request);
            }
            WsEvent::Reply { token, reply } => {
                if let Some(original) = self.pending.remove(&token) {
                    let verdict = Pge::verdict_reply(&original, &reply);
                    ctx.reply(verdict, &original);
                }
            }
            WsEvent::Init { .. } | WsEvent::Time { .. } => {}
        }
        self.continuation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_select_mode() {
        let a = Pge::new("bank");
        assert!(!a.synchronous);
        assert_eq!(a.bank_uri, "urn:svc:bank");
        let s = Pge::synchronous("bank");
        assert!(s.synchronous);
    }

    #[test]
    fn verdict_maps_bank_answers() {
        let mut orig = MessageContext::request("urn:svc:pge", "authorize");
        orig.addressing_mut().message_id = Some("m".into());
        orig.addressing_mut().reply_to = Some("urn:svc:store".into());
        let mut ok = MessageContext::request("urn:x", "r");
        ok.body_mut().text = "approved".into();
        assert_eq!(Pge::verdict_reply(&orig, &ok).body().text, "approved");
        let mut no = MessageContext::request("urn:x", "r");
        no.body_mut().text = "declined".into();
        assert_eq!(Pge::verdict_reply(&orig, &no).body().text, "declined");
        // Faults (aborted bank call) are declines.
        let fault = MessageContext::from_envelope(pws_soap::Envelope::fault(&pws_soap::Fault {
            code: "c".into(),
            reason: "r".into(),
        }));
        assert_eq!(Pge::verdict_reply(&orig, &fault).body().text, "declined");
    }

    #[test]
    fn sync_variant_waits_on_its_one_bank_call() {
        let mut pge = Pge::synchronous("bank");
        assert_eq!(pge.continuation(), Poll::request(), "idle: serve requests");
        pge.pending.insert(
            CallToken::from_raw(7),
            MessageContext::request("urn:x", "a"),
        );
        assert_eq!(
            pge.continuation(),
            Poll::reply(CallToken::from_raw(7)),
            "waiting: only the bank reply wakes it; requests queue"
        );
        let a = Pge::new("bank");
        assert_eq!(a.continuation(), Poll::Next, "async takes anything");
    }
}
