//! The Payment Gateway Emulator (PGE): the middle tier of Fig. 5,
//! replicated with Perpetual-WS. "The PGE calls another Perpetual-WS Web
//! Service that simulates the actions of a credit card issuing bank"
//! (§6.1). The asynchronous variant keeps serving new authorizations while
//! bank calls are in flight; the synchronous variant blocks per request —
//! the comparison behind the up-to-4 % gain reported in §6.4.

use perpetual_ws::{ActiveService, Incoming, MessageHandler, ServiceApi};
use pws_simnet::SimDuration;
use pws_soap::{MessageContext, XmlNode};
use std::collections::HashMap;

/// Local bookkeeping cost per authorization. The paper disregarded the
/// TPC-W minimum execution time for the PGE "to ensure that the effects of
/// replication were not masked"; we keep it similarly small.
pub const PGE_PROCESSING: SimDuration = SimDuration::from_micros(800);

/// The payment gateway service.
#[derive(Debug)]
pub struct Pge {
    bank_uri: String,
    synchronous: bool,
}

impl Pge {
    /// An asynchronous PGE forwarding to service `bank`.
    pub fn new(bank: &str) -> Self {
        Pge {
            bank_uri: format!("urn:svc:{bank}"),
            synchronous: false,
        }
    }

    /// The synchronous variant (§6.4 comparison).
    pub fn synchronous(bank: &str) -> Self {
        Pge {
            bank_uri: format!("urn:svc:{bank}"),
            synchronous: true,
        }
    }

    fn bank_request(&self, amount: &str) -> MessageContext {
        let mut mc = MessageContext::request(&self.bank_uri, "validate");
        mc.body_mut().name = "validate".into();
        mc.body_mut().text = amount.into();
        mc
    }

    fn verdict_reply(original: &MessageContext, bank_reply: &MessageContext) -> MessageContext {
        let verdict =
            if bank_reply.envelope().as_fault().is_none() && bank_reply.body().text == "approved" {
                "approved"
            } else {
                "declined"
            };
        original.reply_with("", XmlNode::new("authorizeResult").with_text(verdict))
    }
}

impl ActiveService for Pge {
    fn run(self: Box<Self>, api: &mut ServiceApi) {
        if self.synchronous {
            // Blocking per request: incoming work queues up meanwhile.
            loop {
                let Some(req) = api.receive_request() else {
                    return;
                };
                api.spend(PGE_PROCESSING);
                let Some(bank_reply) = api.send_receive(self.bank_request(&req.body().text)) else {
                    return;
                };
                let reply = Pge::verdict_reply(&req, &bank_reply);
                api.send_reply(reply, &req);
            }
        } else {
            // Fully asynchronous: consume the unified event queue,
            // interleaving new authorizations with bank replies.
            let mut pending: HashMap<String, MessageContext> = HashMap::new();
            loop {
                match api.receive_any() {
                    Some(Incoming::Request(req)) => {
                        api.spend(PGE_PROCESSING);
                        let id = api.send(self.bank_request(&req.body().text));
                        pending.insert(id, req);
                    }
                    Some(Incoming::Reply(bank_reply)) => {
                        let Some(rid) = bank_reply.addressing().relates_to.clone() else {
                            continue;
                        };
                        let Some(original) = pending.remove(&rid) else {
                            continue;
                        };
                        let reply = Pge::verdict_reply(&original, &bank_reply);
                        api.send_reply(reply, &original);
                    }
                    None => return,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_select_mode() {
        let a = Pge::new("bank");
        assert!(!a.synchronous);
        assert_eq!(a.bank_uri, "urn:svc:bank");
        let s = Pge::synchronous("bank");
        assert!(s.synchronous);
    }

    #[test]
    fn verdict_maps_bank_answers() {
        let mut orig = MessageContext::request("urn:svc:pge", "authorize");
        orig.addressing_mut().message_id = Some("m".into());
        orig.addressing_mut().reply_to = Some("urn:svc:store".into());
        let mut ok = MessageContext::request("urn:x", "r");
        ok.body_mut().text = "approved".into();
        assert_eq!(Pge::verdict_reply(&orig, &ok).body().text, "approved");
        let mut no = MessageContext::request("urn:x", "r");
        no.body_mut().text = "declined".into();
        assert_eq!(Pge::verdict_reply(&orig, &no).body().text, "declined");
        // Faults (aborted bank call) are declines.
        let fault = MessageContext::from_envelope(pws_soap::Envelope::fault(&pws_soap::Fault {
            code: "c".into(),
            reason: "r".into(),
        }));
        assert_eq!(Pge::verdict_reply(&orig, &fault).body().text, "declined");
    }
}
