//! Remote Browser Emulators (RBEs): closed-loop clients that walk the
//! TPC-W page graph with exponential think times (§6.1).

use crate::model::{next_interaction, Interaction};
use bytes::Bytes;
use perpetual_ws::{GroupId, RendezvousRouter, Router};
use pws_perpetual::{CallId, ClientCore, ClientEvent};
use pws_simnet::{Context, Node, NodeId, SimDuration, SimTime, TimerId};
use pws_soap::engine::Engine;
use pws_soap::MessageContext;

/// One emulated browser session.
pub struct Rbe {
    core: ClientCore,
    bookstore: GroupId,
    bookstore_uri: String,
    engine: Engine,
    session: u64,
    page: Interaction,
    think_mean: SimDuration,
    /// Send browse pages down the read-only fast path (mutating pages
    /// always take the ordered path).
    read_only: bool,
    /// A partner session on a *different* bookstore shard: buy-confirm and
    /// shopping-cart pages then name both customers (`a|b`), turning them
    /// into cross-shard transactions.
    cross_partner: Option<u64>,
    /// Cross-shard buy-confirms this browser saw commit.
    pub cross_buy_commits: u64,
    /// Interactions completed (including warm-up).
    pub completed: u64,
    /// Completion timestamps, for windowed WIPS computation.
    pub completions: Vec<SimTime>,
    outstanding: Option<(CallId, SimTime)>,
    think_timer: Option<TimerId>,
    sweep_timer: Option<TimerId>,
}

impl std::fmt::Debug for Rbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rbe")
            .field("session", &self.session)
            .field("completed", &self.completed)
            .finish_non_exhaustive()
    }
}

const SWEEP: SimDuration = SimDuration::from_millis(1_500);

impl Rbe {
    /// Creates an RBE with the given session id and think-time mean.
    pub fn new(
        core: ClientCore,
        bookstore: GroupId,
        session: u64,
        think_mean: SimDuration,
    ) -> Self {
        Rbe {
            core,
            bookstore,
            bookstore_uri: "urn:svc:bookstore".to_owned(),
            engine: Engine::with_id_prefix(format!("rbe{session}")),
            session,
            page: Interaction::Home,
            think_mean,
            read_only: false,
            cross_partner: None,
            cross_buy_commits: 0,
            completed: 0,
            completions: Vec::new(),
            outstanding: None,
            think_timer: None,
            sweep_timer: None,
        }
    }

    /// Routes browse pages through the read-only fast path.
    pub fn with_read_only(mut self, on: bool) -> Self {
        self.read_only = on;
        self
    }

    /// Marks buy-confirm / shopping-cart pages as *multi-customer*: each
    /// names this session plus a deterministic partner session owned by a
    /// different shard (of `shards`), so the store must run them as
    /// cross-shard transactions. Partner probes start at a per-session
    /// offset, so concurrent browsers never contend on one partner key.
    pub fn with_cross_shard(mut self, shards: u32) -> Self {
        let router = RendezvousRouter::new();
        let own = router.shard(&self.session.to_string(), shards);
        let start = 1_000 + self.session * 101;
        self.cross_partner =
            (start..start + 64).find(|p| router.shard(&p.to_string(), shards) != own);
        self
    }

    fn schedule_think(&mut self, ctx: &mut Context<'_>) {
        let think = ctx.rng().exponential(self.think_mean.as_micros() as f64);
        self.think_timer = Some(ctx.set_timer(SimDuration::from_micros(think as u64)));
    }

    fn fire_next_page(&mut self, ctx: &mut Context<'_>) {
        self.page = next_interaction(self.page, ctx.rng());
        let mut mc = MessageContext::request(&self.bookstore_uri, self.page.op_name());
        mc.body_mut().name = self.page.op_name().to_owned();
        mc.body_mut().text = match (self.cross_partner, self.page) {
            (Some(p), Interaction::BuyConfirm | Interaction::ShoppingCart) => {
                format!("{}|{p}", self.session)
            }
            _ => self.session.to_string(),
        };
        mc.addressing_mut().reply_to = Some(format!("urn:rbe:{}", self.session));
        if self.engine.run_out_pipe(&mut mc).is_err() {
            return;
        }
        let Ok(bytes) = mc.to_bytes() else { return };
        let call = if self.read_only && self.page.is_read_only() {
            self.core.call_read_only(ctx, self.bookstore, bytes)
        } else {
            self.core.call(ctx, self.bookstore, bytes)
        };
        self.outstanding = Some((call, ctx.now()));
        if self.sweep_timer.is_none() {
            self.sweep_timer = Some(ctx.set_timer(SWEEP));
        }
    }
}

impl Node for Rbe {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.schedule_think(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
        if let Some(ClientEvent::Reply { call, payload }) = self.core.on_message(&msg, ctx) {
            if self.outstanding.map(|(c, _)| c) == Some(call) {
                if self.cross_partner.is_some() {
                    if let Ok(mc) = MessageContext::from_bytes(&payload) {
                        if mc.body().name == "buyConfirmResult"
                            && mc.body().text.starts_with("txn=commit")
                        {
                            self.cross_buy_commits += 1;
                        }
                    }
                }
                self.outstanding = None;
                self.completed += 1;
                self.completions.push(ctx.now());
                ctx.metrics().incr("tpcw.web_interactions");
                ctx.metrics()
                    .incr(&format!("tpcw.page.{}", self.page.op_name()));
                if self.page.hits_pge() {
                    ctx.metrics().incr("tpcw.pge_interactions");
                }
                self.schedule_think(ctx);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_>) {
        if Some(timer) == self.think_timer {
            self.think_timer = None;
            if self.outstanding.is_none() {
                self.fire_next_page(ctx);
            }
            return;
        }
        if Some(timer) == self.sweep_timer {
            self.sweep_timer = None;
            if let Some((call, sent)) = self.outstanding {
                if ctx.now() - sent >= SWEEP {
                    self.core.retry(ctx, call);
                }
                self.sweep_timer = Some(ctx.set_timer(SWEEP));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_perpetual::Topology;
    use std::sync::Arc;

    #[test]
    fn construction_defaults() {
        let mut topo = Topology::new();
        topo.register(GroupId(0), vec![NodeId::from_raw(0)]);
        topo.register(GroupId(1), vec![NodeId::from_raw(1)]);
        let core = ClientCore::new(
            GroupId(1),
            Arc::new(topo),
            1,
            pws_perpetual::CostModel::FREE,
        );
        let rbe = Rbe::new(core, GroupId(0), 7, SimDuration::from_secs(7));
        assert_eq!(rbe.session, 7);
        assert_eq!(rbe.page, Interaction::Home);
        assert_eq!(rbe.completed, 0);
    }
}
