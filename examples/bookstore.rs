//! The paper's TPC-W scenario (Fig. 5): browser emulators drive an online
//! bookstore, whose Buy Confirm pages authorize payments through a
//! replicated Payment Gateway Emulator that in turn calls a replicated
//! bank — three tiers across two organizational boundaries.
//!
//! ```sh
//! cargo run --release --example bookstore
//! ```

use pws_simnet::SimDuration;
use pws_tpcw::{run_tpcw, TpcwConfig};

fn main() {
    for n in [1u32, 4] {
        let cfg = TpcwConfig {
            n_bookstore: 1,
            n_pge: n,
            n_bank: n,
            rbes: 28,
            duration: SimDuration::from_secs(60),
            warmup: SimDuration::from_secs(10),
            sync_pge: false,
            think_mean: SimDuration::from_secs(7),
            bookstore_shards: 1,
            read_only: false,
            page_cost_scale: 1,
            speculative: false,
            cross_shard_buys: false,
            seed: 2007,
        };
        let r = run_tpcw(cfg);
        println!(
            "PGE/Bank x{n}: {:.2} WIPS over {}s ({} interactions, {:.1}% hit the PGE)",
            r.wips,
            cfg.duration.as_millis() / 1000,
            r.interactions,
            r.pge_share * 100.0
        );
    }
    println!(
        "\nReplicating the payment tiers 4-way costs almost nothing end-to-end,\n\
         because only ~1 in 14 web interactions reaches them — the paper's §6.4\n\
         observation."
    );
}
