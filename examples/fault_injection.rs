//! Fault isolation demonstration (the paper's §1/§3 guarantee): a calling
//! service keeps its safety and liveness while its targets misbehave.
//!
//! Three scenarios:
//!   1. `f` Byzantine replicas inside the target group — masked;
//!   2. a corrupt-replies replica — outvoted by the reply bundle rule;
//!   3. a *fully compromised* (silent) target group — the caller aborts
//!      deterministically via the timeout vote instead of hanging.
//!
//! ```sh
//! cargo run --example fault_injection
//! ```

use perpetual_ws::{
    FaultMode, PassiveService, PassiveUtils, Poll, Service, ServiceCtx, SystemBuilder, WsEvent,
};
use pws_simnet::SimTime;
use pws_soap::{MessageContext, XmlNode};

struct Echo;
impl PassiveService for Echo {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        req.reply_with("", XmlNode::new("ok").with_text(req.body().text.clone()))
    }
}

/// Issues three calls with a 1-second timeout, one at a time, and reports
/// what came back. The synchronous probe loop of the old thread API is now
/// an explicit state machine: each outstanding call's reply is the only
/// event admitted until it resolves.
#[derive(Default)]
struct Probe {
    next: u64,
    outcomes: Vec<String>,
}

impl Probe {
    fn fire(&mut self, ctx: &mut ServiceCtx<'_>) -> Poll {
        let mut mc = MessageContext::request("urn:svc:target", "echo");
        mc.body_mut().name = "echo".into();
        mc.body_mut().text = format!("probe-{}", self.next);
        mc.options_mut().set_timeout_millis(1_000);
        Poll::reply(ctx.send(mc))
    }
}

impl Service for Probe {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Init { .. } => self.fire(ctx),
            WsEvent::Reply { reply, .. } => {
                let i = self.next;
                if reply.envelope().as_fault().is_some() {
                    self.outcomes
                        .push(format!("probe-{i}: ABORTED (deterministic timeout)"));
                } else {
                    self.outcomes
                        .push(format!("probe-{i}: ok -> {:?}", reply.body().text));
                }
                self.next += 1;
                if self.next < 3 {
                    self.fire(ctx)
                } else {
                    // Publish the outcome so the driver can read it back:
                    // serve report requests.
                    Poll::request()
                }
            }
            WsEvent::Request { request } => {
                let reply = request.reply_with(
                    "",
                    XmlNode::new("report").with_text(self.outcomes.join("; ")),
                );
                ctx.reply(reply, &request);
                Poll::request()
            }
            WsEvent::Time { .. } => Poll::request(),
        }
    }
}

fn scenario(name: &str, configure: impl FnOnce(&mut SystemBuilder)) {
    let mut b = SystemBuilder::new(99);
    b.service("probe", 4, |_| Box::<Probe>::default());
    b.passive_service("target", 4, |_| Box::new(Echo));
    configure(&mut b);
    b.scripted_client("observer", "probe", 1);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    let replies = sys.client_replies("observer");
    println!("--- {name} ---");
    match replies.first() {
        Some(r) => println!("{}", r.body().text.replace("; ", "\n")),
        None => println!("(no report — probe group lost liveness?!)"),
    }
    println!();
}

fn main() {
    scenario("healthy target group", |_| {});

    scenario(
        "one silent replica in the target group (f = 1, masked)",
        |b| {
            b.fault("target", 1, FaultMode::Silent);
        },
    );

    scenario(
        "one corrupt-replies replica (outvoted by the bundle rule)",
        |b| {
            b.fault("target", 3, FaultMode::CorruptReplies);
        },
    );

    scenario(
        "fully compromised target (all silent) — deterministic abort",
        |b| {
            for i in 0..4 {
                b.fault("target", i, FaultMode::Silent);
            }
        },
    );

    println!(
        "In every scenario the probe group stayed live and all four of its\n\
         replicas agreed on each outcome — the paper's fault isolation guarantee."
    );
}
