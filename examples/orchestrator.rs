//! A Service-Oriented-Architecture orchestration (the paper's §2.2): a
//! *replicated* orchestrator with a long-running active thread fans out
//! parallel asynchronous calls to two independent replicated services —
//! an inventory service and a pricing service — and combines their answers
//! into a quote. This is the programming model Thema/BFT-WS/SWS cannot
//! express (passive services cannot orchestrate).
//!
//! ```sh
//! cargo run --example orchestrator
//! ```

use perpetual_ws::{
    ActiveService, Incoming, MessageHandler, PassiveService, PassiveUtils, ServiceApi,
    SystemBuilder,
};
use pws_simnet::SimTime;
use pws_soap::{MessageContext, XmlNode};
use std::collections::HashMap;

struct Inventory;
impl PassiveService for Inventory {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let sku: u64 = req.body().text.parse().unwrap_or(0);
        let stock = 3 + (sku * 7) % 40; // deterministic stock level
        req.reply_with("", XmlNode::new("stock").with_text(stock.to_string()))
    }
}

struct Pricing;
impl PassiveService for Pricing {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let sku: u64 = req.body().text.parse().unwrap_or(0);
        let cents = 999 + (sku * 131) % 9000;
        req.reply_with("", XmlNode::new("price").with_text(cents.to_string()))
    }
}

/// The BPEL-engine-like orchestrator: for each incoming quote request it
/// issues *both* backend calls at once, keeps serving other quote requests,
/// and replies when both answers for a given quote have arrived.
struct QuoteOrchestrator;

#[derive(Default)]
struct Quote {
    original: Option<MessageContext>,
    stock: Option<String>,
    price: Option<String>,
}

impl ActiveService for QuoteOrchestrator {
    fn run(self: Box<Self>, api: &mut ServiceApi) {
        let mut quotes: HashMap<u64, Quote> = HashMap::new();
        let mut by_call: HashMap<String, (u64, bool)> = HashMap::new(); // msg id -> (quote, is_price)
        let mut next_quote = 0u64;
        loop {
            match api.receive_any() {
                Some(Incoming::Request(req)) => {
                    let quote_id = next_quote;
                    next_quote += 1;
                    let sku = req.body().text.clone();

                    let mut inv = MessageContext::request("urn:svc:inventory", "check");
                    inv.body_mut().name = "check".into();
                    inv.body_mut().text = sku.clone();
                    let inv_id = api.send(inv);

                    let mut price = MessageContext::request("urn:svc:pricing", "quote");
                    price.body_mut().name = "quote".into();
                    price.body_mut().text = sku;
                    let price_id = api.send(price);

                    by_call.insert(inv_id, (quote_id, false));
                    by_call.insert(price_id, (quote_id, true));
                    quotes.insert(
                        quote_id,
                        Quote {
                            original: Some(req),
                            ..Default::default()
                        },
                    );
                }
                Some(Incoming::Reply(rep)) => {
                    let Some(rid) = rep.addressing().relates_to.clone() else {
                        continue;
                    };
                    let Some((quote_id, is_price)) = by_call.remove(&rid) else {
                        continue;
                    };
                    let Some(q) = quotes.get_mut(&quote_id) else {
                        continue;
                    };
                    let text = rep.body().text.clone();
                    if is_price {
                        q.price = Some(text);
                    } else {
                        q.stock = Some(text);
                    }
                    if let (Some(stock), Some(price)) = (q.stock.clone(), q.price.clone()) {
                        let q = quotes.remove(&quote_id).expect("present");
                        let original = q.original.expect("kept");
                        let body = XmlNode::new("quoteResult")
                            .child(XmlNode::new("stock").with_text(stock))
                            .child(XmlNode::new("priceCents").with_text(price));
                        let reply = original.reply_with("", body);
                        api.send_reply(reply, &original);
                    }
                }
                None => return,
            }
        }
    }
}

fn main() {
    let mut b = SystemBuilder::new(7);
    b.service("orchestrator", 4, |_| Box::new(QuoteOrchestrator));
    b.passive_service("inventory", 4, |_| Box::new(Inventory));
    b.passive_service("pricing", 7, |_| Box::new(Pricing)); // different degree!
    b.scripted_client("buyer", "orchestrator", 6);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));

    let replies = sys.client_replies("buyer");
    println!("quotes completed: {}", replies.len());
    for r in &replies {
        let stock = r
            .body()
            .find("stock")
            .map(|n| n.text.as_str())
            .unwrap_or("?");
        let price = r
            .body()
            .find("priceCents")
            .map(|n| n.text.as_str())
            .unwrap_or("?");
        println!("  stock={stock:>2}  price={price} cents");
    }
    assert_eq!(replies.len(), 6);
    println!(
        "\nAn orchestrator replicated 4-way coordinated services replicated 4- and\n\
         7-way — interoperation between different replication degrees, with both\n\
         backend calls issued in parallel from a long-running active thread."
    );
}
