//! A Service-Oriented-Architecture orchestration (the paper's §2.2): a
//! *replicated* poll-driven orchestrator fans out
//! parallel asynchronous calls to two independent replicated services —
//! an inventory service and a pricing service — and combines their answers
//! into a quote. This is the programming model Thema/BFT-WS/SWS cannot
//! express (passive services cannot orchestrate).
//!
//! ```sh
//! cargo run --example orchestrator
//! ```

use perpetual_ws::{
    CallToken, PassiveService, PassiveUtils, Poll, Service, ServiceCtx, SystemBuilder, WsEvent,
};
use pws_simnet::SimTime;
use pws_soap::{MessageContext, XmlNode};
use std::collections::HashMap;

struct Inventory;
impl PassiveService for Inventory {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let sku: u64 = req.body().text.parse().unwrap_or(0);
        let stock = 3 + (sku * 7) % 40; // deterministic stock level
        req.reply_with("", XmlNode::new("stock").with_text(stock.to_string()))
    }
}

struct Pricing;
impl PassiveService for Pricing {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let sku: u64 = req.body().text.parse().unwrap_or(0);
        let cents = 999 + (sku * 131) % 9000;
        req.reply_with("", XmlNode::new("price").with_text(cents.to_string()))
    }
}

/// The BPEL-engine-like orchestrator: for each incoming quote request it
/// issues *both* backend calls at once (multi-outcall: two `ctx.send`
/// tokens live per quote), keeps serving other quote requests, and replies
/// when both answers for a given quote have arrived.
#[derive(Default)]
struct QuoteOrchestrator {
    quotes: HashMap<u64, Quote>,
    /// call token -> (quote id, is_price)
    by_call: HashMap<CallToken, (u64, bool)>,
    next_quote: u64,
}

#[derive(Default)]
struct Quote {
    original: Option<MessageContext>,
    stock: Option<String>,
    price: Option<String>,
}

impl Service for QuoteOrchestrator {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Request { request } => {
                let quote_id = self.next_quote;
                self.next_quote += 1;
                let sku = request.body().text.clone();

                let mut inv = MessageContext::request("urn:svc:inventory", "check");
                inv.body_mut().name = "check".into();
                inv.body_mut().text = sku.clone();
                let inv_token = ctx.send(inv);

                let mut price = MessageContext::request("urn:svc:pricing", "quote");
                price.body_mut().name = "quote".into();
                price.body_mut().text = sku;
                let price_token = ctx.send(price);

                self.by_call.insert(inv_token, (quote_id, false));
                self.by_call.insert(price_token, (quote_id, true));
                self.quotes.insert(
                    quote_id,
                    Quote {
                        original: Some(request),
                        ..Default::default()
                    },
                );
            }
            WsEvent::Reply { token, reply } => {
                if let Some((quote_id, is_price)) = self.by_call.remove(&token) {
                    if let Some(q) = self.quotes.get_mut(&quote_id) {
                        let text = reply.body().text.clone();
                        if is_price {
                            q.price = Some(text);
                        } else {
                            q.stock = Some(text);
                        }
                        if let (Some(stock), Some(price)) = (q.stock.clone(), q.price.clone()) {
                            let q = self.quotes.remove(&quote_id).expect("present");
                            let original = q.original.expect("kept");
                            let body = XmlNode::new("quoteResult")
                                .child(XmlNode::new("stock").with_text(stock))
                                .child(XmlNode::new("priceCents").with_text(price));
                            let out = original.reply_with("", body);
                            ctx.reply(out, &original);
                        }
                    }
                }
            }
            WsEvent::Init { .. } | WsEvent::Time { .. } => {}
        }
        Poll::Next
    }
}

fn main() {
    let mut b = SystemBuilder::new(7);
    b.service("orchestrator", 4, |_| Box::<QuoteOrchestrator>::default());
    b.passive_service("inventory", 4, |_| Box::new(Inventory));
    b.passive_service("pricing", 7, |_| Box::new(Pricing)); // different degree!
    b.scripted_client("buyer", "orchestrator", 6);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));

    let replies = sys.client_replies("buyer");
    println!("quotes completed: {}", replies.len());
    for r in &replies {
        let stock = r
            .body()
            .find("stock")
            .map(|n| n.text.as_str())
            .unwrap_or("?");
        let price = r
            .body()
            .find("priceCents")
            .map(|n| n.text.as_str())
            .unwrap_or("?");
        println!("  stock={stock:>2}  price={price} cents");
    }
    assert_eq!(replies.len(), 6);
    println!(
        "\nAn orchestrator replicated 4-way coordinated services replicated 4- and\n\
         7-way — interoperation between different replication degrees, with both\n\
         backend calls issued in parallel by one poll-driven orchestrator state machine."
    );
}
