//! Quickstart: replicate a tiny Web Service across four replicas and call
//! it through Perpetual-WS.
//!
//! ```sh
//! cargo run --example quickstart
//! PWS_QUICKSTART_GROUPS=12 cargo run --release --example quickstart  # scale smoke
//! PWS_QUICKSTART_SHARDS=4 cargo run --release --example quickstart   # sharded topology
//! ```
//!
//! `PWS_QUICKSTART_GROUPS=G` deploys G independent counter groups (4
//! replicas each) with one client apiece — a large-topology smoke that the
//! poll-driven runtime hosts without spawning a single thread.
//!
//! `PWS_QUICKSTART_SHARDS=S` instead deploys ONE logical counter service
//! partitioned across S voter groups of 4 replicas with deterministic
//! key→shard routing (`SystemBuilder::sharded`): each request's key picks
//! its owning shard, every shard runs its own independent agreement
//! pipeline, and throughput scales *out* (see
//! `cargo bench --bench sharded_throughput`).

use perpetual_ws::{PassiveService, PassiveUtils, SystemBuilder};
use pws_simnet::SimTime;
use pws_soap::{MessageContext, XmlNode};

/// The paper's `increment` null-op service: returns the old counter value.
struct Counter(u64);

impl PassiveService for Counter {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let old = self.0;
        self.0 += 1;
        req.reply_with(
            "",
            XmlNode::new("incrementResult").with_text(old.to_string()),
        )
    }
}

fn main() {
    if let Some(shards) = std::env::var("PWS_QUICKSTART_SHARDS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        return sharded_quickstart(shards.max(1));
    }
    let groups: u32 = std::env::var("PWS_QUICKSTART_GROUPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // Each deployment group: one service replicated 4 ways (tolerates
    // f = 1 Byzantine replica), plus one unreplicated client firing ten
    // requests.
    let mut b = SystemBuilder::new(42);
    for g in 0..groups {
        b.passive_service(&format!("counter{g}"), 4, |_| Box::new(Counter(0)));
        b.scripted_client_windowed(&format!("client{g}"), &format!("counter{g}"), 10, 1);
    }
    let mut sys = b.build();

    sys.run_until(SimTime::from_secs(30));

    for g in 0..groups {
        let replies = sys.client_replies(&format!("client{g}"));
        if g == 0 {
            println!("group 0 completed {} calls:", replies.len());
            for (i, r) in replies.iter().enumerate() {
                println!(
                    "  call {i}: {} = {:?} (relates to {:?})",
                    r.body().name,
                    r.body().text,
                    r.addressing().relates_to.as_deref().unwrap_or("-")
                );
            }
            let lat = sys.client_latencies("client0");
            let mean_us: u64 = lat.iter().map(|d| d.as_micros()).sum::<u64>() / lat.len() as u64;
            println!(
                "mean latency: {:.3} ms over a BFT group of 4",
                mean_us as f64 / 1000.0
            );
        }
        assert_eq!(replies.len(), 10, "group {g} must complete");
        // Each counter is a replicated state machine: replies are 0..9 in
        // order.
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.body().text, i.to_string(), "group {g} call {i}");
        }
    }
    println!(
        "{groups} group(s) × 4 replicas agreed on every reply — all hosted \
         poll-driven on one thread."
    );
}

/// One logical counter service sharded S ways: two clients fire keyed
/// requests, the rendezvous router assigns each key an owning shard, and
/// every shard independently agrees on (only) its own slice.
fn sharded_quickstart(shards: u32) {
    let mut b = SystemBuilder::new(42);
    b.sharded_passive("counter", shards, 4, |_, _| Box::new(Counter(0)));
    b.scripted_client_windowed("alice", "counter", 12, 4);
    b.scripted_client_windowed("bob", "counter", 12, 4);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(30));
    for client in ["alice", "bob"] {
        assert_eq!(sys.client_replies(client).len(), 12, "{client} completed");
    }
    let routed = sys.metrics().counter("clbft.shard.routed");
    print!("sharded quickstart: 24 keyed requests routed over {shards} shard(s):");
    for k in 0..shards {
        let gid = sys.group(&format!("counter#{k}"));
        let per = sys.metrics().counter(&format!("clbft.shard.route.{gid}"));
        print!(" shard{k}={per}");
    }
    println!();
    assert_eq!(routed, 24);
    println!(
        "{shards} shard(s) × 4 replicas, one logical service, deterministic \
         key routing — every shard agreed independently on its own slice."
    );
}
