//! Quickstart: replicate a tiny Web Service across four replicas and call
//! it through Perpetual-WS.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use perpetual_ws::{PassiveService, PassiveUtils, SystemBuilder};
use pws_simnet::SimTime;
use pws_soap::{MessageContext, XmlNode};

/// The paper's `increment` null-op service: returns the old counter value.
struct Counter(u64);

impl PassiveService for Counter {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let old = self.0;
        self.0 += 1;
        req.reply_with(
            "",
            XmlNode::new("incrementResult").with_text(old.to_string()),
        )
    }
}

fn main() {
    // A deployment: one service ("counter") replicated 4 ways (tolerates
    // f = 1 Byzantine replica), plus one unreplicated client firing ten
    // requests.
    let mut b = SystemBuilder::new(42);
    b.passive_service("counter", 4, |_| Box::new(Counter(0)));
    b.scripted_client_windowed("client", "counter", 10, 1);
    let mut sys = b.build();

    sys.run_until(SimTime::from_secs(30));

    let replies = sys.client_replies("client");
    println!("completed {} calls:", replies.len());
    for (i, r) in replies.iter().enumerate() {
        println!(
            "  call {i}: {} = {:?} (relates to {:?})",
            r.body().name,
            r.body().text,
            r.addressing().relates_to.as_deref().unwrap_or("-")
        );
    }
    let lat = sys.client_latencies("client");
    let mean_us: u64 = lat.iter().map(|d| d.as_micros()).sum::<u64>() / lat.len() as u64;
    println!(
        "mean latency: {:.3} ms over a BFT group of 4",
        mean_us as f64 / 1000.0
    );
    assert_eq!(replies.len(), 10);
    // The counter is a replicated state machine: replies are 0..9 in order.
    for (i, r) in replies.iter().enumerate() {
        assert_eq!(r.body().text, i.to_string());
    }
    println!("all replies correct and in order — the replica group agrees.");
}
