//! Quickstart: replicate a tiny Web Service across four replicas and call
//! it through Perpetual-WS.
//!
//! ```sh
//! cargo run --example quickstart
//! PWS_QUICKSTART_GROUPS=12 cargo run --release --example quickstart    # scale smoke
//! PWS_QUICKSTART_SHARDS=4 cargo run --release --example quickstart     # sharded topology
//! PWS_QUICKSTART_ADD_SHARD=1 cargo run --release --example quickstart  # live reshard
//! PWS_TRACE=1 cargo run --example quickstart                           # phase tracing
//! PWS_TRACE=full cargo run --example quickstart                        # chrome-trace export
//! PWS_AUDIT=1 cargo run --example quickstart                           # protocol auditor
//! ```
//!
//! `PWS_QUICKSTART_GROUPS=G` deploys G independent counter groups (4
//! replicas each) with one client apiece — a large-topology smoke that the
//! poll-driven runtime hosts without spawning a single thread.
//!
//! `PWS_QUICKSTART_SHARDS=S` instead deploys ONE logical counter service
//! partitioned across S voter groups of 4 replicas with deterministic
//! key→shard routing (`SystemBuilder::sharded`): each request's key picks
//! its owning shard, every shard runs its own independent agreement
//! pipeline, and throughput scales *out* (see
//! `cargo bench --bench sharded_throughput`).
//!
//! `PWS_TRACE=1` (or `phases`) turns on request-lifecycle tracing: every
//! call is tracked `queued → batched → pre-prepared → prepared → committed
//! → executed → replied` and a per-phase latency breakdown is printed.
//! `PWS_TRACE=full` additionally writes `target/figures/TRACE_quickstart.json`
//! (load it in chrome://tracing or <https://ui.perfetto.dev>) and
//! `OBS_quickstart.json`. Tracing never perturbs the run: the same-seed
//! trace digest is byte-identical at every level.
//!
//! `PWS_QUICKSTART_ADD_SHARD=1` runs the elastic variant: a 2-shard
//! transactional counter under a 600-request load grows to 3 shards
//! *mid-run* (`System::add_shard`) — the epoch flips through an ordered
//! config record, exactly the keys rendezvous routing reassigns migrate,
//! and in-flight requests at the old epoch are redirected with a typed
//! retry. Zero client-visible errors.

use perpetual_ws::{
    PassiveService, PassiveUtils, Phase, Poll, Service, ServiceCtx, SystemBuilder, TraceLevel,
    TxnService, WsEvent,
};
use pws_simnet::{SimDuration, SimTime};
use pws_soap::{MessageContext, XmlNode};
use std::collections::BTreeMap;

/// The paper's `increment` null-op service: returns the old counter value.
struct Counter(u64);

impl PassiveService for Counter {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let old = self.0;
        self.0 += 1;
        req.reply_with(
            "",
            XmlNode::new("incrementResult").with_text(old.to_string()),
        )
    }
}

fn main() {
    if std::env::var("PWS_QUICKSTART_ADD_SHARD").is_ok_and(|v| v == "1") {
        return elastic_quickstart();
    }
    if let Some(shards) = std::env::var("PWS_QUICKSTART_SHARDS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        return sharded_quickstart(shards.max(1));
    }
    let groups: u32 = std::env::var("PWS_QUICKSTART_GROUPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let trace = std::env::var("PWS_TRACE")
        .ok()
        .and_then(|v| TraceLevel::parse(&v))
        .unwrap_or(TraceLevel::Off);

    // Each deployment group: one service replicated 4 ways (tolerates
    // f = 1 Byzantine replica), plus one unreplicated client firing ten
    // requests.
    let mut b = SystemBuilder::new(42);
    b.tracing(trace);
    for g in 0..groups {
        b.passive_service(&format!("counter{g}"), 4, |_| Box::new(Counter(0)));
        b.scripted_client_windowed(&format!("client{g}"), &format!("counter{g}"), 10, 1);
    }
    let mut sys = b.build();

    sys.run_until(SimTime::from_secs(30));

    for g in 0..groups {
        let replies = sys.client_replies(&format!("client{g}"));
        if g == 0 {
            println!("group 0 completed {} calls:", replies.len());
            for (i, r) in replies.iter().enumerate() {
                println!(
                    "  call {i}: {} = {:?} (relates to {:?})",
                    r.body().name,
                    r.body().text,
                    r.addressing().relates_to.as_deref().unwrap_or("-")
                );
            }
            let lat = sys.client_latencies("client0");
            let mean_us: u64 = lat.iter().map(|d| d.as_micros()).sum::<u64>() / lat.len() as u64;
            println!(
                "mean latency: {:.3} ms over a BFT group of 4",
                mean_us as f64 / 1000.0
            );
        }
        assert_eq!(replies.len(), 10, "group {g} must complete");
        // Each counter is a replicated state machine: replies are 0..9 in
        // order.
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.body().text, i.to_string(), "group {g} call {i}");
        }
    }
    println!(
        "{groups} group(s) × 4 replicas agreed on every reply — all hosted \
         poll-driven on one thread."
    );

    if trace.spans_enabled() {
        println!("\nrequest-lifecycle breakdown (PWS_TRACE={trace:?}):");
        for phase in Phase::ALL {
            if let Some(h) = sys.metrics().histogram(phase.metric_key()) {
                println!(
                    "  {:>13}: p50 {:7.3} ms  p99 {:7.3} ms  (n={})",
                    phase.name(),
                    h.p50(),
                    h.p99(),
                    h.count()
                );
            }
        }
        if let Some(h) = sys.metrics().histogram("obs.lat.total_ms") {
            println!(
                "  {:>13}: p50 {:7.3} ms  p99 {:7.3} ms  (n={})",
                "total",
                h.p50(),
                h.p99(),
                h.count()
            );
        }
        // The protocol plane underneath the request phases: view-change
        // outcomes and their durations (a quiet run shows zeroes — the
        // counters prove the absence of churn, not just its presence).
        let m = sys.metrics();
        println!(
            "  view changes : started {}, completed {}, abandoned {}",
            m.counter("clbft.vc.started"),
            m.counter("clbft.vc.completed"),
            m.counter("clbft.vc.abandoned"),
        );
        for (label, key) in [
            ("vc installed", "obs.proto.vc.installed_ms"),
            ("vc abandoned", "obs.proto.vc.abandoned_ms"),
        ] {
            if let Some(h) = m.histogram(key) {
                println!(
                    "  {label:>13}: p50 {:7.3} ms  p99 {:7.3} ms  (n={})",
                    h.p50(),
                    h.p99(),
                    h.count()
                );
            }
        }
        if trace.events_enabled() {
            match sys.write_obs_artifacts("quickstart") {
                Ok((trace_path, obs_path)) => println!(
                    "wrote {} (open in chrome://tracing) and {}",
                    trace_path.display(),
                    obs_path.display()
                ),
                Err(e) => eprintln!("could not write obs artifacts: {e}"),
            }
        }
    }
    // With PWS_AUDIT set, the online invariant auditor watched the whole
    // run; a clean report is the quickstart's proof of protocol health.
    if let Some(report) = sys.audit_report() {
        print!("\n{report}");
    }
}

/// One logical counter service sharded S ways: two clients fire keyed
/// requests, the rendezvous router assigns each key an owning shard, and
/// every shard independently agrees on (only) its own slice.
fn sharded_quickstart(shards: u32) {
    let mut b = SystemBuilder::new(42);
    b.sharded_passive("counter", shards, 4, |_, _| Box::new(Counter(0)));
    b.scripted_client_windowed("alice", "counter", 12, 4);
    b.scripted_client_windowed("bob", "counter", 12, 4);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(30));
    for client in ["alice", "bob"] {
        assert_eq!(sys.client_replies(client).len(), 12, "{client} completed");
    }
    let routed = sys.metrics().counter("clbft.shard.routed");
    print!("sharded quickstart: 24 keyed requests routed over {shards} shard(s):");
    for k in 0..shards {
        let gid = sys.group(&format!("counter#{k}"));
        let per = sys.metrics().counter(&format!("clbft.shard.route.{gid}"));
        print!(" shard{k}={per}");
    }
    println!();
    assert_eq!(routed, 24);
    println!(
        "{shards} shard(s) × 4 replicas, one logical service, deterministic \
         key routing — every shard agreed independently on its own slice."
    );
    if let Some(report) = sys.audit_report() {
        print!("\n{report}");
    }
}

/// The counter as a *transactional* sharded service, so the deployment can
/// migrate its per-key state during a live reshard: `export_keys` hands
/// over exactly the keys rendezvous routing reassigned, `import_keys`
/// installs them on the new shard.
#[derive(Default)]
struct ElasticCounter {
    counts: BTreeMap<String, u64>,
}

impl Service for ElasticCounter {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        if let WsEvent::Request { request } = ev {
            let key = request.body().text.clone();
            let n = self.counts.entry(key).or_insert(0);
            *n += 1;
            let reply =
                request.reply_with("", XmlNode::new("incrementResult").with_text(n.to_string()));
            ctx.reply(reply, &request);
        }
        Poll::Next
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend((self.counts.len() as u32).to_be_bytes());
        for (k, n) in &self.counts {
            v.extend((k.len() as u32).to_be_bytes());
            v.extend(k.as_bytes());
            v.extend(n.to_be_bytes());
        }
        v
    }

    fn restore(&mut self, snapshot: &[u8]) {
        self.counts.clear();
        let mut at = 4usize;
        let len = u32::from_be_bytes(snapshot[0..4].try_into().unwrap()) as usize;
        for _ in 0..len {
            let kl = u32::from_be_bytes(snapshot[at..at + 4].try_into().unwrap()) as usize;
            at += 4;
            let k = String::from_utf8(snapshot[at..at + kl].to_vec()).unwrap();
            at += kl;
            let n = u64::from_be_bytes(snapshot[at..at + 8].try_into().unwrap());
            at += 8;
            self.counts.insert(k, n);
        }
    }
}

impl TxnService for ElasticCounter {
    fn txn_execute(&mut self, _op: &str, keys: &[String]) -> String {
        let mut out = Vec::new();
        for k in keys {
            let n = self.counts.entry(k.clone()).or_insert(0);
            *n += 1;
            out.push(format!("{k}={n}"));
        }
        out.join(",")
    }

    fn export_keys(&mut self, moved: &dyn Fn(&str) -> bool) -> Vec<(String, Vec<u8>)> {
        let gone: Vec<String> = self.counts.keys().filter(|k| moved(k)).cloned().collect();
        gone.iter()
            .map(|k| {
                (
                    k.clone(),
                    self.counts.remove(k).unwrap().to_be_bytes().to_vec(),
                )
            })
            .collect()
    }

    fn import_keys(&mut self, entries: &[(String, Vec<u8>)]) {
        for (k, v) in entries {
            let n = u64::from_be_bytes(v.as_slice().try_into().unwrap());
            *self.counts.entry(k.clone()).or_insert(0) += n;
        }
    }
}

/// Live resharding: a 2-shard transactional counter under a 600-request
/// load grows to 3 shards mid-run. The spare voter group is provisioned at
/// build time (`SystemBuilder::add_shard`), then `System::add_shard` flips
/// the routing epoch through an ordered config record and migrates exactly
/// the keys whose rendezvous winner changed — with zero client-visible
/// errors.
fn elastic_quickstart() {
    let per_client = 300u64;
    let mut b = SystemBuilder::new(42);
    b.checkpoint_interval(16);
    b.sharded_txn("counter", 2, 4, |_, _| Box::<ElasticCounter>::default());
    b.add_shard("counter"); // provision one dormant spare (counter#2)
    b.scripted_client_windowed("alice", "counter", per_client, 8);
    b.scripted_client_windowed("bob", "counter", per_client, 8);
    let mut sys = b.build();

    // Let part of the load land, then grow the deployment online.
    let mut flipped = false;
    for _ in 0..2_000 {
        sys.run_for(SimDuration::from_millis(5));
        if sys.metrics().counter("client.web_interactions") >= 150 {
            let active = sys.add_shard("counter");
            assert_eq!(active, 3, "epoch flips 2 -> 3");
            flipped = true;
            break;
        }
    }
    assert!(flipped, "the load never reached the flip point");
    sys.run_until(SimTime::from_secs(300));

    for client in ["alice", "bob"] {
        let replies = sys.client_replies(client);
        assert_eq!(replies.len(), per_client as usize, "{client} completed");
        assert!(
            replies.iter().all(|r| r.envelope().as_fault().is_none()),
            "{client} saw a fault during the reshard"
        );
    }
    let m = sys.metrics();
    println!(
        "elastic quickstart: 600 requests across a live 2 -> 3 reshard \
         (epoch flips {}, migrations completed {})",
        m.counter("clbft.reshard.epoch_flips"),
        m.counter("clbft.reshard.completed"),
    );
    println!(
        "  {} keys exported, {} imported, {} redirect(s), {} bounded client \
         retrie(s), 0 client-visible errors",
        m.counter("clbft.reshard.exported_keys"),
        m.counter("clbft.reshard.imported_keys"),
        m.counter("clbft.reshard.redirects"),
        m.counter("client.route_retries"),
    );
    assert_eq!(m.counter("clbft.reshard.epoch_flips"), 1);
    assert_eq!(m.counter("clbft.reshard.completed"), 1);
    assert_eq!(m.counter("client.route_errors"), 0);
    println!(
        "3 shards now agree independently — the deployment grew without \
         stopping the world."
    );
    if let Some(report) = sys.audit_report() {
        print!("\n{report}");
    }
}
