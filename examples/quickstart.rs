//! Quickstart: replicate a tiny Web Service across four replicas and call
//! it through Perpetual-WS.
//!
//! ```sh
//! cargo run --example quickstart
//! PWS_QUICKSTART_GROUPS=12 cargo run --release --example quickstart  # scale smoke
//! ```
//!
//! `PWS_QUICKSTART_GROUPS=G` deploys G independent counter groups (4
//! replicas each) with one client apiece — a large-topology smoke that the
//! poll-driven runtime hosts without spawning a single thread.

use perpetual_ws::{PassiveService, PassiveUtils, SystemBuilder};
use pws_simnet::SimTime;
use pws_soap::{MessageContext, XmlNode};

/// The paper's `increment` null-op service: returns the old counter value.
struct Counter(u64);

impl PassiveService for Counter {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let old = self.0;
        self.0 += 1;
        req.reply_with(
            "",
            XmlNode::new("incrementResult").with_text(old.to_string()),
        )
    }
}

fn main() {
    let groups: u32 = std::env::var("PWS_QUICKSTART_GROUPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // Each deployment group: one service replicated 4 ways (tolerates
    // f = 1 Byzantine replica), plus one unreplicated client firing ten
    // requests.
    let mut b = SystemBuilder::new(42);
    for g in 0..groups {
        b.passive_service(&format!("counter{g}"), 4, |_| Box::new(Counter(0)));
        b.scripted_client_windowed(&format!("client{g}"), &format!("counter{g}"), 10, 1);
    }
    let mut sys = b.build();

    sys.run_until(SimTime::from_secs(30));

    for g in 0..groups {
        let replies = sys.client_replies(&format!("client{g}"));
        if g == 0 {
            println!("group 0 completed {} calls:", replies.len());
            for (i, r) in replies.iter().enumerate() {
                println!(
                    "  call {i}: {} = {:?} (relates to {:?})",
                    r.body().name,
                    r.body().text,
                    r.addressing().relates_to.as_deref().unwrap_or("-")
                );
            }
            let lat = sys.client_latencies("client0");
            let mean_us: u64 = lat.iter().map(|d| d.as_micros()).sum::<u64>() / lat.len() as u64;
            println!(
                "mean latency: {:.3} ms over a BFT group of 4",
                mean_us as f64 / 1000.0
            );
        }
        assert_eq!(replies.len(), 10, "group {g} must complete");
        // Each counter is a replicated state machine: replies are 0..9 in
        // order.
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.body().text, i.to_string(), "group {g} call {i}");
        }
    }
    println!(
        "{groups} group(s) × 4 replicas agreed on every reply — all hosted \
         poll-driven on one thread."
    );
}
