//! Workspace umbrella crate for the Perpetual-WS reproduction.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the library surface lives in
//! the member crates, re-exported here for convenience:
//!
//! * [`perpetual_ws`] — the middleware (start here).
//! * [`pws_perpetual`] — the Perpetual replica-group protocol.
//! * [`pws_clbft`] — Castro–Liskov BFT.
//! * [`pws_soap`] — SOAP / WS-Addressing substrate.
//! * [`pws_crypto`] — MACs, authenticators, signatures.
//! * [`pws_simnet`] — the deterministic simulator.
//! * [`pws_tpcw`] — the TPC-W macro-benchmark workload.
//!
//! `docs/ARCHITECTURE.md` maps every crate to the paper component it
//! reproduces, walks a request through the stack, and tabulates the wire
//! formats.

#![forbid(unsafe_code)]

pub use perpetual_ws;
pub use pws_clbft;
pub use pws_crypto;
pub use pws_perpetual;
pub use pws_simnet;
pub use pws_soap;
pub use pws_tpcw;
