//! Full-stack determinism: two runs of the same replicated-service workload
//! with the same master seed must produce identical traces, metrics, and
//! replies — CLBFT agreement, Perpetual interaction, SOAP marshalling and
//! the simulator all included.

use perpetual_ws::{PassiveService, PassiveUtils, SystemBuilder};
use pws_simnet::SimTime;
use pws_soap::{MessageContext, XmlNode};

struct Accumulator {
    total: u64,
}

impl PassiveService for Accumulator {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let n: u64 = req.body().text.trim().parse().unwrap_or(0);
        self.total += n;
        req.reply_with("", XmlNode::new("sum").with_text(self.total.to_string()))
    }
}

struct StackFingerprint {
    trace_hash: u64,
    trace_events: u64,
    metrics: String,
    replies: Vec<String>,
}

fn run_stack(seed: u64) -> StackFingerprint {
    let mut b = SystemBuilder::new(seed);
    b.passive_service("acc", 4, |_| Box::new(Accumulator { total: 0 }));
    b.scripted_client("user", "acc", 6);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    let replies: Vec<String> = sys
        .client_replies("user")
        .iter()
        .map(|r| r.body().text.clone())
        .collect();
    let digest = sys.sim_mut().trace_digest();
    StackFingerprint {
        trace_hash: digest.value(),
        trace_events: digest.events(),
        metrics: format!("{:?}", sys.metrics()),
        replies,
    }
}

#[test]
fn full_stack_same_seed_reproduces_exactly() {
    let a = run_stack(2008);
    let b = run_stack(2008);
    assert_eq!(a.replies.len(), 6, "workload must complete");
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.trace_events, b.trace_events);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.replies, b.replies);
}

/// Pinned master seed ⇒ pinned trace digest for the quickstart topology
/// (one counter group of 4 replicas, one windowed client, 10 calls).
///
/// This golden constant proves the poll-driven runtime reproduces the seed
/// semantics event-for-event across commits, not merely run-to-run within
/// one build: any change to agreement, scheduling, marshalling, or the
/// service hosting path that alters even one delivery shows up here. If a
/// change is *intended* to alter the event stream, re-pin the constant in
/// the same commit and say why.
const QUICKSTART_SEED: u64 = 42;
// Re-pinned for the read-only fast path (PR 6): requests now carry a
// read-only flag on the wire (one byte in every CLBFT request frame), so
// every frame length, cost-model charge, and delivery time shifted —
// even in this all-ordered workload. Previous value:
// 0xa28a_61bc_ef6b_7bd1 (dense per-target dedup numbering, PR 5).
const QUICKSTART_GOLDEN_DIGEST: u64 = 0x643f_5817_e03b_2f09;

struct Counter(u64);
impl PassiveService for Counter {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let old = self.0;
        self.0 += 1;
        req.reply_with(
            "",
            XmlNode::new("incrementResult").with_text(old.to_string()),
        )
    }
}

#[test]
fn quickstart_topology_matches_golden_digest() {
    let mut b = SystemBuilder::new(QUICKSTART_SEED);
    b.passive_service("counter", 4, |_| Box::new(Counter(0)));
    b.scripted_client_windowed("client", "counter", 10, 1);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(30));
    assert_eq!(sys.client_replies("client").len(), 10, "workload completes");
    let digest = sys.sim_mut().trace_digest();
    assert_eq!(
        digest.value(),
        QUICKSTART_GOLDEN_DIGEST,
        "trace digest drifted from the pinned golden value \
         (got {:#018x} over {} events)",
        digest.value(),
        digest.events(),
    );
}

#[test]
fn full_stack_different_seeds_diverge_in_trace() {
    // Replies are deterministic in value (the protocol masks randomness),
    // but scheduling jitter differs, so the traces must not collide.
    let a = run_stack(2008);
    let b = run_stack(2009);
    assert_ne!(a.trace_hash, b.trace_hash);
}
