//! Observability invariants: tracing is a *pure side channel*. Enabling it
//! at any level leaves the same-seed trace digest byte-identical, every
//! client request maps to exactly one span that opens and closes with
//! lifecycle-ordered phases, the flight recorder stays bounded, and a node
//! panic leaves a readable dump behind.

use perpetual_ws::{
    AuditMode, FaultMode, PassiveService, PassiveUtils, Phase, ProtoFamily, System, SystemBuilder,
    TraceLevel, AUDIT_VIOLATIONS_KEY,
};
use pws_simnet::{RunOutcome, SimTime};
use pws_soap::{MessageContext, XmlNode};

/// Same topology and constants as `tests/determinism.rs`: one counter
/// group of 4 replicas, one windowed client, 10 calls, master seed 42. If
/// the digest is ever intentionally re-pinned there, re-pin it here too.
const QUICKSTART_SEED: u64 = 42;
const QUICKSTART_GOLDEN_DIGEST: u64 = 0x643f_5817_e03b_2f09;
const QUICKSTART_REQUESTS: u64 = 10;

struct Counter(u64);
impl PassiveService for Counter {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let old = self.0;
        self.0 += 1;
        req.reply_with(
            "",
            XmlNode::new("incrementResult").with_text(old.to_string()),
        )
    }
}

fn run_quickstart(level: TraceLevel) -> System {
    let mut b = SystemBuilder::new(QUICKSTART_SEED);
    b.tracing(level);
    b.passive_service("counter", 4, |_| Box::new(Counter(0)));
    b.scripted_client_windowed("client", "counter", QUICKSTART_REQUESTS, 1);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(30));
    sys
}

/// The headline guarantee: the golden quickstart digest is byte-identical
/// at every trace level. The recorder observes the event stream; it never
/// perturbs scheduling, time, or randomness.
#[test]
fn tracing_never_perturbs_the_golden_digest() {
    for level in TraceLevel::ALL {
        let mut sys = run_quickstart(level);
        assert_eq!(
            sys.client_replies("client").len(),
            QUICKSTART_REQUESTS as usize,
            "workload completes at {level:?}"
        );
        let digest = sys.sim_mut().trace_digest();
        assert_eq!(
            digest.value(),
            QUICKSTART_GOLDEN_DIGEST,
            "trace digest drifted with tracing at {level:?} \
             (got {:#018x} over {} events)",
            digest.value(),
            digest.events(),
        );
    }
}

/// At `Full`, every client request opens exactly one span, every span
/// closes with a reply, and the first-seen phase times respect lifecycle
/// order.
#[test]
fn full_tracing_covers_every_request() {
    let mut sys = run_quickstart(TraceLevel::Full);
    let obs = sys.sim_mut().obs();
    assert_eq!(
        obs.spans_opened(),
        QUICKSTART_REQUESTS,
        "one span per request"
    );
    assert_eq!(
        obs.spans_closed(),
        QUICKSTART_REQUESTS,
        "every span replied"
    );
    for (key, span) in obs.spans() {
        assert!(span.is_closed(), "span {key:?} never closed");
        assert!(
            span.first(Phase::Queued).is_some(),
            "span {key:?} missing queued"
        );
        assert!(
            span.first(Phase::Executed).is_some(),
            "span {key:?} missing executed"
        );
        assert!(
            span.first(Phase::Replied).is_some(),
            "span {key:?} missing replied"
        );
        // `Span::phases()` yields in lifecycle order; first-seen times
        // must be non-decreasing along it.
        let times: Vec<u64> = span.phases().map(|(_, t)| t).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "span {key:?} phases out of order: {times:?}"
        );
    }
    assert!(!obs.events().is_empty(), "Full keeps per-sighting events");

    // The per-phase and whole-span histograms were fed as spans advanced.
    let m = sys.metrics();
    let total = m
        .histogram(pws_obs_total_key())
        .expect("total-latency histogram present");
    assert_eq!(total.count(), QUICKSTART_REQUESTS);
    assert!(total.p50() > 0.0 && total.p99() >= total.p50());
    let replied = m
        .histogram(Phase::Replied.metric_key())
        .expect("replied-phase histogram present");
    assert_eq!(replied.count(), QUICKSTART_REQUESTS);
}

fn pws_obs_total_key() -> &'static str {
    // Re-exported constant lives in pws-obs; spelled out here so the test
    // also pins the public metric name.
    "obs.lat.total_ms"
}

/// With tracing off the span machinery is fully dormant — no spans, no
/// per-phase histograms — while client-side latency is still measured.
#[test]
fn off_level_records_no_spans() {
    let mut sys = run_quickstart(TraceLevel::Off);
    assert_eq!(sys.sim_mut().obs().spans_opened(), 0);
    assert_eq!(sys.sim_mut().obs().span_count(), 0);
    let m = sys.metrics();
    assert!(m.histogram(pws_obs_total_key()).is_none());
    assert!(m.histogram(Phase::Replied.metric_key()).is_none());
    let client = m
        .histogram("client.latency_ms")
        .expect("client latency is always measured");
    assert_eq!(client.count(), QUICKSTART_REQUESTS);
}

/// The chrome-trace export is machine-checkable: span accounting in the
/// document matches the recorder, and no span is left open.
#[test]
fn trace_export_is_complete_and_closed() {
    let sys = {
        let mut b = SystemBuilder::new(QUICKSTART_SEED);
        b.tracing(TraceLevel::Full);
        b.passive_service("counter", 4, |_| Box::new(Counter(0)));
        b.scripted_client_windowed("client", "counter", QUICKSTART_REQUESTS, 1);
        let mut sys = b.build();
        sys.run_until(SimTime::from_secs(30));
        sys
    };
    let json = sys.export_trace_json();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains(&format!("\"spanCount\": {QUICKSTART_REQUESTS}")));
    assert!(json.contains(&format!("\"spansOpened\": {QUICKSTART_REQUESTS}")));
    assert!(json.contains(&format!("\"spansClosed\": {QUICKSTART_REQUESTS}")));
    assert!(json.contains("\"closed\":true"));
    assert!(!json.contains("\"closed\":false"), "no span left open");
    assert!(json.contains("\"queued\"") && json.contains("\"replied\""));

    let obs_json = sys.export_obs_json();
    assert!(obs_json.contains("\"counters\""));
    assert!(obs_json.contains("\"histograms\""));
    assert!(obs_json.contains("obs.lat.total_ms"));
}

/// The flight recorder honours its configured capacity: a checkpoint-heavy
/// run records far more events than the ring holds, and every ring stays
/// at or under the cap while remembering how much it dropped.
#[test]
fn flight_ring_is_bounded() {
    const CAP: usize = 4;
    let mut b = SystemBuilder::new(7);
    b.flight_capacity(CAP);
    b.checkpoint_interval(1); // a checkpoint per sequence → lots of events
    b.passive_service("counter", 4, |_| Box::new(Counter(0)));
    b.scripted_client_windowed("client", "counter", 60, 1);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    assert_eq!(sys.client_replies("client").len(), 60);

    let obs = sys.sim_mut().obs();
    let mut rings = 0;
    let mut evicted_somewhere = false;
    for node in 0..64u64 {
        if let Some(ring) = obs.flight_ring(node) {
            rings += 1;
            assert!(ring.len() <= CAP, "node {node} ring over capacity");
            assert_eq!(ring.capacity(), CAP);
            if ring.total_recorded() > CAP as u64 {
                evicted_somewhere = true;
            }
        }
    }
    assert!(rings >= 4, "every replica records flight events");
    assert!(
        evicted_somewhere,
        "a checkpoint-per-seq run must overflow a {CAP}-entry ring"
    );
    let dump = obs.dump_all_flight();
    assert!(dump.contains("evicted"), "dump reports dropped history");
    assert!(dump.contains("checkpoint-taken"));
}

/// A service that panics while handling its `boom`-th request — the
/// "event nobody planned for" the flight recorder exists for.
struct Grenade {
    handled: u64,
    boom: u64,
}
impl PassiveService for Grenade {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        self.handled += 1;
        if self.handled == self.boom {
            panic!("grenade went off on request {}", self.handled);
        }
        req.reply_with("", XmlNode::new("ok"))
    }
}

/// A node panic surfaces as `RunOutcome::NodePanicked` and leaves the
/// panicking node's flight dump behind, ending in the node-panic marker
/// and showing the protocol activity (checkpoints) that preceded it.
#[test]
fn node_panic_dumps_the_flight_recorder() {
    let mut b = SystemBuilder::new(11);
    b.checkpoint_interval(1);
    b.passive_service("bomb", 4, |_| {
        Box::new(Grenade {
            handled: 0,
            boom: 3,
        })
    });
    b.scripted_client_windowed("client", "bomb", 10, 1);
    let mut sys = b.build();
    let outcome = sys.run_until(SimTime::from_secs(60));
    assert!(
        matches!(outcome, RunOutcome::NodePanicked { .. }),
        "expected a node panic, got {outcome:?}"
    );
    let dump = sys
        .sim_mut()
        .flight_dump()
        .expect("panic captures a flight dump")
        .to_string();
    assert!(
        dump.contains("node-panic"),
        "dump ends with the panic marker"
    );
    assert!(
        dump.contains("checkpoint-taken"),
        "dump shows pre-panic protocol activity:\n{dump}"
    );
    // The on-demand dump covers every node, the panicking one included.
    let all = sys.dump_flight_recorder();
    assert!(all.contains("node-panic"));
}

/// The auditor is a pure side channel too: enabling it — in either mode,
/// at every trace level — leaves the golden digest byte-identical, and a
/// fault-free run reports a clean audit with zero violations.
#[test]
fn auditing_never_perturbs_the_golden_digest() {
    for level in TraceLevel::ALL {
        for mode in [AuditMode::Record, AuditMode::Strict] {
            let mut b = SystemBuilder::new(QUICKSTART_SEED);
            b.tracing(level);
            b.audit(mode);
            b.passive_service("counter", 4, |_| Box::new(Counter(0)));
            b.scripted_client_windowed("client", "counter", QUICKSTART_REQUESTS, 1);
            let mut sys = b.build();
            sys.run_until(SimTime::from_secs(30));
            assert_eq!(
                sys.client_replies("client").len(),
                QUICKSTART_REQUESTS as usize,
                "workload completes at {level:?}/{mode:?}"
            );
            let digest = sys.sim_mut().trace_digest();
            assert_eq!(
                digest.value(),
                QUICKSTART_GOLDEN_DIGEST,
                "trace digest drifted with auditing at {level:?}/{mode:?}"
            );
            assert_eq!(sys.audit_violations(), 0, "clean run at {level:?}/{mode:?}");
            let report = sys.audit_report().expect("auditor was enabled");
            assert!(
                report.contains("audit clean"),
                "unexpected report:\n{report}"
            );
            assert_eq!(sys.metrics().counter(AUDIT_VIOLATIONS_KEY), 0);
        }
    }
}

/// The auditor catches a real protocol violation: a primary that sends
/// conflicting pre-prepares for the same (view, seq) to different
/// replicas. The honest quorum still completes the workload — which is
/// exactly why the equivocation is invisible to clients and needs an
/// auditor to surface.
#[test]
fn auditor_flags_an_equivocating_primary() {
    let mut b = SystemBuilder::new(QUICKSTART_SEED);
    b.audit(AuditMode::Record); // Record, not env-derived: assert, don't panic
    b.passive_service("counter", 4, |_| Box::new(Counter(0)));
    b.fault("counter", 0, FaultMode::EquivocatingPrimary);
    b.scripted_client_windowed("client", "counter", QUICKSTART_REQUESTS, 1);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    assert_eq!(
        sys.client_replies("client").len(),
        QUICKSTART_REQUESTS as usize,
        "honest quorum masks the equivocation for clients"
    );
    assert!(
        sys.audit_violations() > 0,
        "auditor must flag the equivocating primary"
    );
    let report = sys.audit_report().expect("auditor was enabled");
    assert!(
        report.contains("pre-prepare-equivocation"),
        "wrong invariant fired:\n{report}"
    );
    assert!(
        sys.metrics().counter(AUDIT_VIOLATIONS_KEY) > 0,
        "violations are mirrored into the metrics counter"
    );
}

/// Protocol spans cover the checkpoint machinery: a checkpoint-per-seq
/// traced run opens one `ckpt.<seq>` span per stabilised checkpoint,
/// closes every one, and feeds the `obs.proto.ckpt.stable_ms` histogram.
#[test]
fn protocol_spans_cover_checkpoints() {
    let mut b = SystemBuilder::new(QUICKSTART_SEED);
    b.tracing(TraceLevel::Full);
    b.checkpoint_interval(1);
    b.passive_service("counter", 4, |_| Box::new(Counter(0)));
    b.scripted_client_windowed("client", "counter", QUICKSTART_REQUESTS, 1);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(30));
    assert_eq!(
        sys.client_replies("client").len(),
        QUICKSTART_REQUESTS as usize
    );

    let obs = sys.sim_mut().obs();
    let ckpt: Vec<_> = obs
        .proto_spans()
        .filter(|(k, _)| k.family == ProtoFamily::Ckpt)
        .collect();
    assert!(!ckpt.is_empty(), "checkpoint spans were recorded");
    for (key, span) in &ckpt {
        assert!(span.is_closed(), "ckpt span {key:?} never stabilised");
    }
    assert!(obs.proto_spans_opened() >= ckpt.len() as u64);

    let json = sys.export_trace_json();
    assert!(json.contains("\"protoSpans\""));
    assert!(json.contains("\"stable\""));

    let h = sys
        .metrics()
        .histogram("obs.proto.ckpt.stable_ms")
        .expect("checkpoint-stability histogram present");
    assert!(h.count() >= 1 && h.p50() >= 0.0);
}

/// Time-series gauges record on traced runs (queue depth, in-flight,
/// batch occupancy) and export through `export_timeseries_json`; with
/// tracing off the gauge rings stay fully dormant.
#[test]
fn timeseries_gauges_record_on_traced_runs() {
    let sys = run_quickstart(TraceLevel::Full);
    let m = sys.metrics();
    let names: Vec<&str> = m.gauges().map(|(name, _)| name).collect();
    assert!(
        names.iter().any(|n| n.starts_with("ts.queue_depth.")),
        "queue-depth gauge present, got {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("ts.inflight.")),
        "in-flight gauge present, got {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("ts.batch_occupancy.")),
        "batch-occupancy gauge present, got {names:?}"
    );
    for (name, ring) in m.gauges() {
        assert!(ring.total_recorded() > 0, "gauge {name} never sampled");
        let s = ring.summary().expect("non-empty ring summarises");
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max);
    }
    let json = sys.export_timeseries_json();
    assert!(json.contains("ts.queue_depth."));
    assert!(json.contains("\"samples\""));

    // Dormant with tracing off: no rings, empty export.
    let off = run_quickstart(TraceLevel::Off);
    assert_eq!(off.metrics().gauges().count(), 0, "gauges gated on tracing");
    assert!(!off.export_timeseries_json().contains("ts."));
}

/// CI smoke: gated behind `PWS_OBS_SMOKE=1`. Runs the quickstart at
/// `Full`, re-checks the export invariants, and writes the
/// `target/figures/TRACE_smoke.json` / `OBS_smoke.json` artifacts.
#[test]
fn obs_smoke_artifacts() {
    if std::env::var("PWS_OBS_SMOKE")
        .map(|v| v != "1")
        .unwrap_or(true)
    {
        return;
    }
    let mut sys = run_quickstart(TraceLevel::Full);
    assert_eq!(
        sys.client_replies("client").len(),
        QUICKSTART_REQUESTS as usize
    );
    assert_eq!(
        sys.sim_mut().trace_digest().value(),
        QUICKSTART_GOLDEN_DIGEST,
        "golden digest must hold in the smoke run"
    );
    let json = sys.export_trace_json();
    assert!(json.contains(&format!("\"spanCount\": {QUICKSTART_REQUESTS}")));
    assert!(!json.contains("\"closed\":false"));
    let (trace_path, obs_path) = sys
        .write_obs_artifacts("smoke")
        .expect("artifact write succeeds");
    assert!(trace_path.exists() && obs_path.exists());
    println!(
        "obs smoke artifacts: {} {}",
        trace_path.display(),
        obs_path.display()
    );
}
