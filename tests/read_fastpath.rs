//! End-to-end read-only fast-path and speculative-execution tests.
//!
//! The acceptance bar (ISSUE 6): read-only requests are answered from
//! committed state without consuming an agreement slot (`clbft.ro.served`
//! grows while the target's executed sequence does not), clients accept a
//! read only on `2f + 1` matching replies, reads never observe
//! speculative or rolled-back state, and a recovering replica refuses the
//! fast path until it has replayed the committed suffix.

use perpetual_ws::{GroupId, PassiveService, PassiveUtils, SystemBuilder};
use pws_perpetual::{CallId, ClientCore, ClientEvent, FaultMode};
use pws_simnet::{Context, Node, NodeId, SimDuration, SimTime, TimerId};
use pws_soap::engine::Engine;
use pws_soap::{MessageContext, XmlNode};

/// A counter with `add` (mutating) and `get` (pure read) operations — the
/// minimal service whose reads can expose stale or speculative state.
struct Ctr {
    total: u64,
}

impl PassiveService for Ctr {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        if req.body().name == "add" {
            self.total += req.body().text.trim().parse::<u64>().unwrap_or(0);
        }
        req.reply_with("", XmlNode::new("sum").with_text(self.total.to_string()))
    }

    fn snapshot(&self) -> Vec<u8> {
        self.total.to_be_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut b = [0u8; 8];
        b.copy_from_slice(snapshot);
        self.total = u64::from_be_bytes(b);
    }
}

/// A closed-loop client alternating ordered writes with fast-path reads
/// (or issuing pure reads), recording for every read the counter value it
/// observed together with the writes known-completed when it was issued.
struct RwClient {
    core: ClientCore,
    target: GroupId,
    engine: Engine,
    /// `(write, read)` rounds to run; `0` writes per round = pure reads.
    rounds: u64,
    writes_per_round: u64,
    start_delay: SimDuration,
    /// Idle gap between operations, so a script can span fault windows.
    pace: SimDuration,
    rounds_done: u64,
    writes_done: u64,
    /// `(call, is_read, writes completed when issued)`.
    outstanding: Option<(CallId, bool, u64)>,
    /// Per read: `(writes completed at issue, value observed)`.
    reads: Vec<(u64, u64)>,
    start_timer: Option<TimerId>,
    sweep_timer: Option<TimerId>,
}

const SWEEP: SimDuration = SimDuration::from_millis(1_500);

impl RwClient {
    fn new(
        core: ClientCore,
        target: GroupId,
        rounds: u64,
        writes_per_round: u64,
        start_delay: SimDuration,
        pace: SimDuration,
    ) -> Self {
        RwClient {
            core,
            target,
            engine: Engine::with_id_prefix("rw".to_owned()),
            rounds,
            writes_per_round,
            start_delay,
            pace,
            rounds_done: 0,
            writes_done: 0,
            outstanding: None,
            reads: Vec::new(),
            start_timer: None,
            sweep_timer: None,
        }
    }

    fn encode(&mut self, op: &str, text: &str) -> Option<bytes::Bytes> {
        let mut mc = MessageContext::request("urn:svc:ctr", op);
        mc.body_mut().name = op.to_owned();
        mc.body_mut().text = text.to_owned();
        mc.addressing_mut().reply_to = Some("urn:rw".to_owned());
        self.engine.run_out_pipe(&mut mc).ok()?;
        mc.to_bytes().ok()
    }

    fn fire_next(&mut self, ctx: &mut Context<'_>) {
        if self.rounds_done >= self.rounds {
            return;
        }
        // Each round: `writes_per_round` ordered adds, then one fast read.
        let writes_target = (self.rounds_done + 1) * self.writes_per_round;
        let (call, is_read) = if self.writes_done < writes_target {
            let bytes = self.encode("add", "1").expect("marshal");
            (self.core.call(ctx, self.target, bytes), false)
        } else {
            let bytes = self.encode("get", "").expect("marshal");
            (self.core.call_read_only(ctx, self.target, bytes), true)
        };
        self.outstanding = Some((call, is_read, self.writes_done));
        if self.sweep_timer.is_none() {
            self.sweep_timer = Some(ctx.set_timer(SWEEP));
        }
    }
}

impl Node for RwClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.start_timer = Some(ctx.set_timer(self.start_delay));
    }

    fn on_message(&mut self, _from: NodeId, msg: bytes::Bytes, ctx: &mut Context<'_>) {
        let Some(ClientEvent::Reply { call, payload }) = self.core.on_message(&msg, ctx) else {
            return;
        };
        let Some((expect, is_read, writes_at_issue)) = self.outstanding else {
            return;
        };
        if call != expect {
            return;
        }
        self.outstanding = None;
        if is_read {
            let value = MessageContext::from_bytes(&payload)
                .ok()
                .and_then(|mc| mc.body().text.trim().parse::<u64>().ok())
                .expect("read reply carries the counter value");
            self.reads.push((writes_at_issue, value));
            self.rounds_done += 1;
        } else {
            self.writes_done += 1;
        }
        if self.pace == SimDuration::ZERO {
            self.fire_next(ctx);
        } else {
            self.start_timer = Some(ctx.set_timer(self.pace));
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_>) {
        if Some(timer) == self.start_timer {
            self.start_timer = None;
            self.fire_next(ctx);
            return;
        }
        if Some(timer) == self.sweep_timer {
            self.sweep_timer = None;
            if let Some((call, _, _)) = self.outstanding {
                self.core.retry(ctx, call);
                self.sweep_timer = Some(ctx.set_timer(SWEEP));
            }
        }
    }
}

fn add_rw_client(
    b: &mut SystemBuilder,
    name: &str,
    rounds: u64,
    writes_per_round: u64,
    start_delay: SimDuration,
    pace: SimDuration,
) {
    b.custom_client(name, move |core, uris| {
        let (_, target) = uris.route("urn:svc:ctr", "0").expect("ctr routes");
        Box::new(RwClient::new(
            core,
            target,
            rounds,
            writes_per_round,
            start_delay,
            pace,
        ))
    });
}

fn client_state(sys: &mut perpetual_ws::System, name: &str) -> (u64, Vec<(u64, u64)>) {
    let node = sys.client_node(name);
    let c = sys.sim_mut().node_mut::<RwClient>(node).expect("rw client");
    (c.rounds_done, c.reads.clone())
}

/// Last executed agreement sequence of every replica in the group.
fn last_execs(sys: &mut perpetual_ws::System, service: &str, n: u32) -> Vec<u64> {
    (0..n)
        .map(|i| {
            sys.replica_mut(service, i)
                .expect("replica exists")
                .bft_last_executed()
                .0
        })
        .collect()
}

fn exec_chains(sys: &mut perpetual_ws::System, service: &str, n: u32) -> Vec<[u8; 32]> {
    (0..n)
        .map(|i| {
            sys.replica_mut(service, i)
                .expect("replica exists")
                .bft_execution_chain()
                .0
        })
        .collect()
}

#[test]
fn pure_read_load_consumes_no_agreement_slots() {
    // A client hammering only reads: every read must be answered from
    // committed state on the fast path, and the target group must never
    // open an agreement slot for them.
    let reads = 40u64;
    let mut b = SystemBuilder::new(6_001);
    b.passive_service("ctr", 4, |_| Box::new(Ctr { total: 0 }));
    add_rw_client(
        &mut b,
        "reader",
        reads,
        0,
        SimDuration::from_secs(5),
        SimDuration::ZERO,
    );
    let mut sys = b.build();

    sys.run_until(SimTime::from_secs(4));
    let before = last_execs(&mut sys, "ctr", 4);
    sys.run_until(SimTime::from_secs(120));

    let (done, read_values) = client_state(&mut sys, "reader");
    assert_eq!(done, reads, "every read answered");
    assert!(
        read_values.iter().all(|&(_, v)| v == 0),
        "counter untouched"
    );

    let m = sys.metrics();
    assert!(
        m.counter("clbft.ro.served") >= reads,
        "fast path served the reads: {}",
        m.counter("clbft.ro.served")
    );
    assert_eq!(m.counter("clbft.ro.fallbacks"), 0, "no ordered demotions");
    assert_eq!(m.counter("client.reads_issued"), reads);
    assert_eq!(
        m.counter("clbft.exec.requests"),
        0,
        "pure-read load must not execute agreement slots"
    );
    let after = last_execs(&mut sys, "ctr", 4);
    assert_eq!(before, after, "reads consumed agreement sequence numbers");
}

#[test]
fn reads_observe_every_completed_write_exactly() {
    // Read-your-writes linearizability for a single caller: a read issued
    // after `k` writes completed must observe exactly `k` — never a stale
    // value, never a speculative one. Checked with speculation off and on.
    for speculative in [false, true] {
        let rounds = 25u64;
        let mut b = SystemBuilder::new(6_002);
        b.speculative(speculative);
        b.passive_service("ctr", 4, |_| Box::new(Ctr { total: 0 }));
        add_rw_client(
            &mut b,
            "rw",
            rounds,
            2,
            SimDuration::from_millis(100),
            SimDuration::ZERO,
        );
        let mut sys = b.build();
        sys.run_until(SimTime::from_secs(180));

        let (done, read_values) = client_state(&mut sys, "rw");
        assert_eq!(done, rounds, "speculative={speculative}: every round done");
        for (i, &(writes, value)) in read_values.iter().enumerate() {
            assert_eq!(
                value, writes,
                "speculative={speculative}: read {i} observed {value} after {writes} writes"
            );
        }
        let m = sys.metrics();
        assert!(m.counter("clbft.ro.served") > 0);
        if speculative {
            assert!(
                m.counter("clbft.spec.executed") > 0,
                "speculation must have engaged"
            );
            assert!(m.counter("clbft.spec.finalized") > 0);
        }
    }
}

#[test]
fn speculation_survives_a_primary_crash_without_read_anomalies() {
    // Crash the target primary mid-run with speculation on: the view
    // change discards speculated slots on the survivors, yet every read
    // still observes exactly the completed writes and the surviving
    // replicas end digest-identical.
    let rounds = 15u64;
    let mut b = SystemBuilder::new(6_003);
    b.speculative(true);
    b.passive_service("ctr", 4, |_| Box::new(Ctr { total: 0 }));
    add_rw_client(
        &mut b,
        "rw",
        rounds,
        2,
        SimDuration::from_millis(100),
        SimDuration::from_millis(100),
    );
    let mut sys = b.build();

    // Let traffic flow, then crash the initial primary (replica 0 of the
    // first-registered service is simnet node 0).
    sys.run_until(SimTime::from_secs(3));
    sys.sim_mut().net_mut().crash(NodeId::from_raw(0));
    sys.run_until(SimTime::from_secs(240));

    let (done, read_values) = client_state(&mut sys, "rw");
    assert_eq!(done, rounds, "every round completed despite the crash");
    for (i, &(writes, value)) in read_values.iter().enumerate() {
        assert_eq!(value, writes, "read {i} observed {value} after {writes}");
    }
    let m = sys.metrics();
    assert!(m.counter("clbft.spec.executed") > 0, "speculation engaged");
    assert!(
        m.counter("perpetual.view_changes") > 0,
        "the crash forced a view change"
    );
    // Surviving replicas converge (the crashed node is frozen mid-flight).
    let chains = exec_chains(&mut sys, "ctr", 4);
    let execs = last_execs(&mut sys, "ctr", 4);
    for i in 2..4 {
        assert_eq!(execs[1], execs[i], "last_exec diverges at replica {i}");
        assert_eq!(chains[1], chains[i], "exec chain diverges at replica {i}");
    }
}

#[test]
fn recovering_replica_refuses_reads_until_caught_up() {
    // Satellite 3: a replica wiped to a stale state must gate the fast
    // path until state transfer replays the committed suffix — its frozen
    // counter must never corrupt a read quorum, and while recovering it
    // refuses rather than serves.
    let rounds = 30u64;
    let mut b = SystemBuilder::new(6_004);
    b.checkpoint_interval(8);
    b.max_batch_size(1);
    b.passive_service("ctr", 4, |_| Box::new(Ctr { total: 0 }));
    b.fault("ctr", 3, FaultMode::StaleDrop { after_ms: 2_000 });
    add_rw_client(
        &mut b,
        "rw",
        rounds,
        2,
        SimDuration::from_millis(100),
        SimDuration::from_millis(100),
    );
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(300));

    let (done, read_values) = client_state(&mut sys, "rw");
    assert_eq!(done, rounds, "every round completed through the recovery");
    for (i, &(writes, value)) in read_values.iter().enumerate() {
        assert_eq!(
            value, writes,
            "read {i} observed {value} after {writes} writes — a stale \
             replica leaked into a read quorum"
        );
    }
    let m = sys.metrics();
    assert!(m.counter("clbft.ro.served") > 0);
    assert!(
        m.counter("clbft.recovery.installs") >= 1,
        "the wiped replica must recover via state transfer"
    );
    // Digest-checked convergence after recovery.
    let chains = exec_chains(&mut sys, "ctr", 4);
    for i in 1..4 {
        assert_eq!(chains[0], chains[i], "exec chain diverges at replica {i}");
    }
}
