//! End-to-end checkpointing, state-transfer, and proactive-recovery tests.
//!
//! The acceptance bar (ISSUE 4): a replica wiped at sequence `N` rejoins
//! via `FetchState`/`StateResponse` and executes requests `≥ N + 1` with
//! state identical to its peers (digest-checked), and a full
//! proactive-recovery rotation completes under client load with zero
//! client-visible errors.

use perpetual_ws::{PassiveService, PassiveUtils, SystemBuilder};
use pws_perpetual::FaultMode;
use pws_simnet::{SimDuration, SimTime};
use pws_soap::{MessageContext, XmlNode};

/// A stateful accumulator with a real snapshot/restore implementation: the
/// running total is exactly the state a recovered replica must not lose.
struct Counter {
    total: u64,
}

impl PassiveService for Counter {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let n: u64 = req.body().text.trim().parse().unwrap_or(0);
        self.total += n;
        req.reply_with("", XmlNode::new("sum").with_text(self.total.to_string()))
    }

    fn snapshot(&self) -> Vec<u8> {
        self.total.to_be_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut b = [0u8; 8];
        b.copy_from_slice(snapshot);
        self.total = u64::from_be_bytes(b);
    }
}

/// Collects each replica's recovery-relevant fingerprint: last executed
/// seq, execution chain, stable checkpoint, and the application snapshot.
fn fingerprints(
    sys: &mut perpetual_ws::System,
    service: &str,
    n: u32,
) -> Vec<(u64, [u8; 32], u64, Vec<u8>)> {
    (0..n)
        .map(|i| {
            let r = sys.replica_mut(service, i).expect("replica exists");
            let (stable, _) = r.bft_stable_checkpoint();
            (
                r.bft_last_executed().0,
                r.bft_execution_chain().0,
                stable.0,
                r.service_snapshot(),
            )
        })
        .collect()
}

#[test]
fn wiped_replica_recovers_via_state_transfer() {
    // Replica 3 silently drops to a blank state mid-run (the churny
    // StaleDrop fault). State transfer — not retransmit storms — must
    // restore it: it rejoins at a fetched checkpoint, replays the
    // committed suffix, and then tracks live traffic, ending bit-identical
    // to its peers.
    let mut b = SystemBuilder::new(9_001);
    b.checkpoint_interval(8);
    b.max_batch_size(1); // one slot per request: boundaries cross quickly
    b.passive_service("ctr", 4, |_| Box::new(Counter { total: 0 }));
    b.fault("ctr", 3, FaultMode::StaleDrop { after_ms: 150 });
    b.scripted_client_windowed("user", "ctr", 240, 2);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));

    // Zero client-visible errors: every request answered.
    assert_eq!(sys.client_replies("user").len(), 240);

    let m = sys.metrics();
    assert_eq!(m.counter("clbft.recovery.stale_drops"), 1);
    assert!(
        m.counter("clbft.recovery.fetches_sent") >= 1,
        "lag evidence must trigger a fetch"
    );
    assert!(
        m.counter("clbft.recovery.installs") >= 1,
        "the wiped replica must install fetched state"
    );
    assert!(m.counter("clbft.ckpt.taken") > 0);
    assert!(m.counter("clbft.ckpt.stable") > 0);
    // State transfer, not retransmit storms: the recovery must not lean on
    // client retries or share retransmissions, and lag evidence must not
    // spam fetches.
    assert!(
        m.counter("client.call_retries") <= 2,
        "retransmit storm: {} client retries",
        m.counter("client.call_retries")
    );
    assert!(
        m.counter("perpetual.shares_retransmitted") <= 2,
        "retransmit storm: {} share retransmits",
        m.counter("perpetual.shares_retransmitted")
    );
    assert!(
        m.counter("clbft.recovery.fetches_sent") <= 3,
        "fetch spam: {}",
        m.counter("clbft.recovery.fetches_sent")
    );

    // Digest-checked convergence: the wiped replica executed past its wipe
    // point and holds state identical to its peers — execution chain,
    // stable checkpoint, and application snapshot.
    let fps = fingerprints(&mut sys, "ctr", 4);
    assert!(
        fps[3].0 > 8,
        "replica 3 executed past its wipe point: {:?}",
        fps[3].0
    );
    for i in 1..4 {
        assert_eq!(fps[0].0, fps[i].0, "last_exec diverges at replica {i}");
        assert_eq!(fps[0].1, fps[i].1, "exec chain diverges at replica {i}");
        assert_eq!(fps[0].2, fps[i].2, "stable seq diverges at replica {i}");
        assert_eq!(fps[0].3, fps[i].3, "app snapshot diverges at replica {i}");
    }
}

#[test]
fn stale_drop_recovery_is_deterministic() {
    // The whole crash-wipe-fetch-install path must be a deterministic
    // function of the seed: same seed, same trace digest.
    let run = |seed: u64| {
        let mut b = SystemBuilder::new(seed);
        b.checkpoint_interval(8);
        b.max_batch_size(1);
        b.passive_service("ctr", 4, |_| Box::new(Counter { total: 0 }));
        b.fault("ctr", 3, FaultMode::StaleDrop { after_ms: 300 });
        b.scripted_client_windowed("user", "ctr", 120, 2);
        let mut sys = b.build();
        sys.run_until(SimTime::from_secs(120));
        assert_eq!(sys.client_replies("user").len(), 120);
        sys.sim_mut().trace_digest().value()
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78));
}

#[test]
fn proactive_rotation_completes_under_load() {
    // One replica per group per 500 ms window reboots from nothing and
    // rejoins via state transfer; a full rotation covers all four replicas
    // by 2 s. The client must see zero errors throughout, and at the end
    // every replica holds the identical digest-checked state.
    let mut b = SystemBuilder::new(9_002);
    b.checkpoint_interval(8);
    b.max_batch_size(1);
    b.proactive_recovery(SimDuration::from_millis(500));
    b.passive_service("ctr", 4, |_| Box::new(Counter { total: 0 }));
    b.scripted_client_windowed("user", "ctr", 600, 1);
    let mut sys = b.build();
    // Stop mid-window (rotation period 2 s, fires at k*500 ms): no replica
    // is mid-recovery at the deadline.
    sys.run_until(SimTime::from_millis(60_250));

    assert_eq!(
        sys.client_replies("user").len(),
        600,
        "zero client-visible errors under rotation"
    );
    let m = sys.metrics();
    assert!(
        m.counter("clbft.recovery.proactive_restarts") >= 4,
        "a full rotation covers every replica: {}",
        m.counter("clbft.recovery.proactive_restarts")
    );
    assert!(m.counter("clbft.recovery.installs") >= 3);

    let fps = fingerprints(&mut sys, "ctr", 4);
    for i in 1..4 {
        assert_eq!(fps[0].0, fps[i].0, "last_exec diverges at replica {i}");
        assert_eq!(fps[0].1, fps[i].1, "exec chain diverges at replica {i}");
        assert_eq!(fps[0].3, fps[i].3, "app snapshot diverges at replica {i}");
    }
}

#[test]
fn healthy_runs_checkpoint_without_state_transfer() {
    // Checkpoint certificates must not perturb a healthy run: no fetches,
    // no installs, and two identical runs produce identical traces.
    let run = |seed: u64| {
        let mut b = SystemBuilder::new(seed);
        b.checkpoint_interval(8);
        b.max_batch_size(1);
        b.passive_service("ctr", 4, |_| Box::new(Counter { total: 0 }));
        b.scripted_client_windowed("user", "ctr", 60, 2);
        let mut sys = b.build();
        sys.run_until(SimTime::from_secs(60));
        assert_eq!(sys.client_replies("user").len(), 60);
        let m = sys.metrics();
        assert!(m.counter("clbft.ckpt.taken") > 0, "checkpoints engaged");
        assert!(m.counter("clbft.ckpt.stable") > 0, "checkpoints stabilized");
        assert_eq!(m.counter("clbft.recovery.installs"), 0, "no installs");
        assert_eq!(m.counter("clbft.recovery.wipes"), 0, "no wipes");
        sys.sim_mut().trace_digest().value()
    };
    assert_eq!(run(55), run(55), "checkpointing is deterministic");
}

#[test]
fn batch_occupancy_is_reported_per_group() {
    // Two replicated services under load: occupancy must be keyed per
    // group (clbft.exec.<group>.*) so sweeps can spot straggler groups,
    // and the per-group counters must add up to the global ones.
    let mut b = SystemBuilder::new(9_003);
    b.passive_service("alpha", 4, |_| Box::new(Counter { total: 0 }));
    b.passive_service("beta", 4, |_| Box::new(Counter { total: 0 }));
    b.scripted_client_windowed("ua", "alpha", 40, 8);
    b.scripted_client_windowed("ub", "beta", 40, 8);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    assert_eq!(sys.client_replies("ua").len(), 40);
    assert_eq!(sys.client_replies("ub").len(), 40);

    let ga = sys.group("alpha");
    let gb = sys.group("beta");
    let m = sys.metrics();
    let a_batches = m.batches(&format!("clbft.exec.{ga}"));
    let b_batches = m.batches(&format!("clbft.exec.{gb}"));
    assert!(a_batches > 0, "group {ga} occupancy recorded");
    assert!(b_batches > 0, "group {gb} occupancy recorded");
    assert_eq!(
        a_batches + b_batches,
        m.batches("clbft.exec"),
        "per-group batches sum to the global counter"
    );
    assert_eq!(
        m.counter(&format!("clbft.exec.{ga}.requests"))
            + m.counter(&format!("clbft.exec.{gb}.requests")),
        m.counter("clbft.exec.requests"),
        "per-group requests sum to the global counter"
    );
    assert!(m.mean_batch_occupancy(&format!("clbft.exec.{ga}")) >= 1.0);
}

/// The dedup-compaction satellite (ISSUE 5): checkpoints used to carry the
/// executed-id dedup set as a flat list (16 B per executed request,
/// forever) and the driver retained every produced reply — so
/// `clbft.ckpt.snapshot_bytes` grew linearly with request history. With
/// per-origin compaction and bounded reply retention, snapshots must
/// *plateau*: late boundaries may not be meaningfully larger than
/// mid-run ones, even as the covered request count keeps growing.
#[test]
fn compacted_dedup_keeps_checkpoint_snapshots_bounded() {
    let total = 480u64;
    let mut b = SystemBuilder::new(77);
    b.checkpoint_interval(16);
    // A tight retransmit cache makes the plateau visible inside a short
    // run; it is safe because the single client keeps only 4 calls
    // outstanding and retries every 900 ms — far inside the contract.
    b.reply_retention(64);
    b.passive_service("ctr", 4, |_| Box::new(Counter { total: 0 }));
    b.scripted_client_windowed("user", "ctr", total, 4);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(240));
    assert_eq!(sys.client_replies("user").len(), total as usize);

    // The voter's dedup set covers the whole history in O(origins):
    // hundreds of request ids, a handful of wire entries.
    let (ids, entries) = sys.replica_mut("ctr", 0).unwrap().bft_dedup_footprint();
    assert!(ids >= total, "dedup set covers the history: {ids}");
    assert!(
        entries <= 16,
        "compaction failed: {entries} wire entries for {ids} ids"
    );

    // Snapshot sizes plateau: the biggest boundary snapshot of the run
    // stays within a small factor of the median, where the uncompacted
    // encoding grew without bound (~16 B/request dedup + every reply
    // retained). The absolute ceiling makes regressions loud.
    let s = sys
        .metrics()
        .summary("clbft.ckpt.snapshot_bytes")
        .expect("boundaries sampled");
    assert!(s.count >= 40, "enough samples: {}", s.count);
    assert!(
        s.max <= s.p50 * 1.5,
        "snapshot bytes must plateau (p50 {} max {})",
        s.p50,
        s.max
    );
    assert!(
        s.max < 120_000.0,
        "absolute snapshot ceiling blown: {}",
        s.max
    );
}

// --------------------------- Merkle page transfer (ISSUE 8) ---------------

/// Bytes of mostly-static application state in [`BigStateCounter`]. Large
/// enough that the page set (at the 256-byte test page size) exceeds
/// `MAX_PAGES_PER_FETCH`, so a transfer spans several solicitation rounds
/// and several responders.
const BLOB_LEN: usize = 32 * 1024;

/// A service whose state is a large static blob plus a small mutating
/// counter — the shape that makes page-granular transfer and incremental
/// hashing pay off. The blob is a deterministic pseudo-random fill, so
/// every replica snapshots identical bytes.
struct BigStateCounter {
    blob: Vec<u8>,
    total: u64,
}

impl BigStateCounter {
    fn new() -> Self {
        let mut blob = vec![0u8; BLOB_LEN];
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for b in blob.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        BigStateCounter { blob, total: 0 }
    }
}

impl PassiveService for BigStateCounter {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let n: u64 = req.body().text.trim().parse().unwrap_or(0);
        self.total += n;
        req.reply_with("", XmlNode::new("sum").with_text(self.total.to_string()))
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut s = self.blob.clone();
        s.extend_from_slice(&self.total.to_be_bytes());
        s
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let (blob, tail) = snapshot.split_at(snapshot.len() - 8);
        self.blob = blob.to_vec();
        let mut b = [0u8; 8];
        b.copy_from_slice(tail);
        self.total = u64::from_be_bytes(b);
    }
}

/// Runs the stale-drop workload over the big-state service and returns the
/// page metrics `(fetched, verified, rejected, hashed)` plus the trace
/// digest.
fn delta_run(seed: u64, fault: FaultMode) -> (u64, u64, u64, u64, u64) {
    let mut b = SystemBuilder::new(seed);
    b.checkpoint_interval(8);
    b.max_batch_size(1);
    b.page_size(256);
    b.reply_retention(4);
    b.passive_service("big", 4, |_| Box::new(BigStateCounter::new()));
    b.fault("big", 3, fault);
    b.scripted_client_windowed("user", "big", 240, 2);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    assert_eq!(
        sys.client_replies("user").len(),
        240,
        "zero client-visible errors"
    );
    let m = sys.metrics();
    assert!(m.counter("clbft.recovery.installs") >= 1, "state installed");
    let out = (
        m.counter("clbft.pages.fetched"),
        m.counter("clbft.pages.verified"),
        m.counter("clbft.pages.rejected"),
        m.counter("clbft.pages.hashed"),
        sys.sim_mut().trace_digest().value(),
    );
    let fps = fingerprints(&mut sys, "big", 4);
    for i in 1..4 {
        assert_eq!(fps[0].1, fps[i].1, "exec chain diverges at replica {i}");
        assert_eq!(fps[0].3, fps[i].3, "app snapshot diverges at replica {i}");
    }
    out
}

/// The delta-recovery satellite: a warm StaleDrop keeps its (untrusted,
/// re-verified) page store across the wipe, so rejoining ships only the
/// pages that actually changed; a cold drop of the same workload re-fetches
/// everything. O(k) for a k-page diff, not O(state).
#[test]
fn warm_restart_fetches_strictly_fewer_pages_than_cold() {
    let warm = delta_run(4_242, FaultMode::StaleDrop { after_ms: 150 });
    let cold = delta_run(4_242, FaultMode::StaleDropCold { after_ms: 150 });
    let total_pages = (BLOB_LEN / 256) as u64; // blob pages alone, floor
    assert!(
        cold.0 >= total_pages,
        "a cold restart must fetch at least the whole blob: {} < {total_pages}",
        cold.0
    );
    assert!(
        warm.0 < cold.0,
        "warm restart must fetch strictly fewer pages: warm {} vs cold {}",
        warm.0,
        cold.0
    );
    assert!(
        warm.0 <= cold.0 / 2,
        "the static blob must not travel on a warm restart: warm {} vs cold {}",
        warm.0,
        cold.0
    );
    // Every fetched page passed Merkle verification; honest peers sent
    // nothing bogus.
    assert_eq!(warm.0, warm.1);
    assert_eq!(cold.0, cold.1);
    assert_eq!(warm.2, 0, "no rejects in a fault-free transfer");
    // Same seed, same trace: the whole delta-transfer path is
    // deterministic.
    let again = delta_run(4_242, FaultMode::StaleDrop { after_ms: 150 });
    assert_eq!(warm, again, "delta recovery must be seed-deterministic");
}

/// The incremental-checkpoint satellite: with a mostly-static state, each
/// boundary after the first re-hashes only the pages the small write
/// actually dirtied — `clbft.pages.hashed` stays far below
/// `boundaries × total_pages` — while the certified digests keep
/// converging (checkpoints stabilize all run long).
#[test]
fn incremental_checkpoints_rehash_only_dirty_pages() {
    let mut b = SystemBuilder::new(4_343);
    b.checkpoint_interval(8);
    b.max_batch_size(1);
    b.page_size(256);
    b.reply_retention(4);
    b.passive_service("big", 4, |_| Box::new(BigStateCounter::new()));
    b.scripted_client_windowed("user", "big", 240, 2);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    assert_eq!(sys.client_replies("user").len(), 240);
    let m = sys.metrics();
    let boundaries = m.counter("clbft.ckpt.taken");
    let hashed = m.counter("clbft.pages.hashed");
    let dirty = m.counter("clbft.pages.dirty");
    let blob_pages = (BLOB_LEN / 256) as u64;
    assert!(boundaries >= 40, "checkpoints engaged: {boundaries}");
    assert!(
        m.counter("clbft.ckpt.stable") > 0,
        "certified digests converge at every boundary"
    );
    // Full re-hashing would cost at least boundaries × blob_pages; the
    // incremental path must land far under it (first boundaries per
    // replica hash everything, later ones only the dirty tail).
    assert!(
        hashed < boundaries * blob_pages / 4,
        "incremental hashing regressed: {hashed} hashed over {boundaries} \
         boundaries of ≥{blob_pages} pages"
    );
    assert_eq!(hashed, dirty, "exactly the dirty pages are re-hashed");
    assert_eq!(m.counter("clbft.pages.fetched"), 0, "no transfer happened");
}

/// The adversarial-transfer satellite at system scale: a responder that
/// corrupts every page it serves can stall a transfer but never poison it.
/// The wiped replica rejects the bogus pages against the certified root
/// (counting them), converges through honest peers, and the client sees
/// zero errors. Replica 0 is the responder the fetcher solicits first at
/// this seed, so the corrupt pages sit directly on the recovery path.
#[test]
fn corrupt_page_responder_cannot_poison_recovery() {
    let mut b = SystemBuilder::new(4_444);
    b.checkpoint_interval(8);
    b.max_batch_size(1);
    b.page_size(256);
    b.reply_retention(4);
    b.passive_service("big", 4, |_| Box::new(BigStateCounter::new()));
    b.fault("big", 0, FaultMode::CorruptPages);
    b.fault("big", 3, FaultMode::StaleDropCold { after_ms: 150 });
    b.scripted_client_windowed("user", "big", 240, 2);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    assert_eq!(
        sys.client_replies("user").len(),
        240,
        "zero client-visible errors despite the corrupt responder"
    );
    let m = sys.metrics();
    assert!(m.counter("clbft.recovery.installs") >= 1);
    assert!(
        m.counter("clbft.pages.verified") > 0,
        "honest pages got through"
    );
    assert!(
        m.counter("clbft.pages.rejected") > 0,
        "the corrupt responder's pages must be rejected and counted"
    );
    // Nothing corrupt ever installed: the peers all hold identical state.
    let fps = fingerprints(&mut sys, "big", 4);
    for i in [0usize, 2, 3] {
        assert_eq!(fps[2].1, fps[i].1, "exec chain diverges at replica {i}");
        assert_eq!(fps[2].3, fps[i].3, "app snapshot diverges at replica {i}");
    }
}

/// Extended crash-wipe-recover smoke, run by CI with `PWS_RECOVERY_SMOKE=1`
/// on every push: a longer load with both a churny stale-drop *and* a
/// proactive rotation in the same deployment.
#[test]
fn recovery_smoke_extended() {
    if std::env::var("PWS_RECOVERY_SMOKE").is_err() {
        return;
    }
    let mut b = SystemBuilder::new(9_004);
    b.checkpoint_interval(16);
    b.proactive_recovery(SimDuration::from_millis(800));
    b.passive_service("ctr", 4, |_| Box::new(Counter { total: 0 }));
    b.fault("ctr", 2, FaultMode::StaleDrop { after_ms: 1_100 });
    b.scripted_client_windowed("user", "ctr", 1_500, 4);
    let mut sys = b.build();
    sys.run_until(SimTime::from_millis(120_400));
    assert_eq!(sys.client_replies("user").len(), 1_500);
    let m = sys.metrics();
    assert!(m.counter("clbft.recovery.proactive_restarts") >= 4);
    assert!(m.counter("clbft.recovery.stale_drops") >= 1);
    assert!(m.counter("clbft.recovery.installs") >= 4);
    let fps = fingerprints(&mut sys, "ctr", 4);
    for i in 1..4 {
        assert_eq!(fps[0].1, fps[i].1, "exec chain diverges at replica {i}");
        assert_eq!(fps[0].3, fps[i].3, "app snapshot diverges at replica {i}");
    }
}

/// Extended page-transfer smoke, run by CI with `PWS_RECOVERY_SMOKE=1`: the
/// delta-recovery and adversarial suites at a longer load — a cold-wiped
/// replica re-fetches the whole big state page by page while a corrupt
/// responder keeps serving poisoned ranges, and incremental hashing holds
/// across hundreds of checkpoint boundaries.
#[test]
fn recovery_smoke_page_transfer() {
    if std::env::var("PWS_RECOVERY_SMOKE").is_err() {
        return;
    }
    let mut b = SystemBuilder::new(9_005);
    b.checkpoint_interval(16);
    b.max_batch_size(1);
    b.page_size(256);
    b.reply_retention(4);
    b.passive_service("big", 4, |_| Box::new(BigStateCounter::new()));
    b.fault("big", 1, FaultMode::CorruptPages);
    b.fault("big", 3, FaultMode::StaleDropCold { after_ms: 600 });
    b.scripted_client_windowed("user", "big", 2_500, 4);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(300));
    assert_eq!(sys.client_replies("user").len(), 2_500);
    let m = sys.metrics();
    let blob_pages = (BLOB_LEN / 256) as u64;
    assert!(m.counter("clbft.recovery.installs") >= 1);
    assert!(
        m.counter("clbft.pages.fetched") >= blob_pages,
        "a cold wipe re-fetches the whole blob"
    );
    assert_eq!(
        m.counter("clbft.pages.fetched"),
        m.counter("clbft.pages.verified"),
        "every installed page passed Merkle verification"
    );
    assert!(
        m.counter("clbft.pages.rejected") > 0,
        "the corrupt responder left a trace"
    );
    assert!(
        m.counter("clbft.pages.hashed") < m.counter("clbft.ckpt.taken") * blob_pages / 4,
        "incremental hashing holds at smoke scale"
    );
    let fps = fingerprints(&mut sys, "big", 4);
    for i in [0usize, 2, 3] {
        assert_eq!(fps[2].1, fps[i].1, "exec chain diverges at replica {i}");
        assert_eq!(fps[2].3, fps[i].3, "app snapshot diverges at replica {i}");
    }
}
