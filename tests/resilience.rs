//! Resilience integration tests: network partitions, primary failures,
//! skewed clocks, and client-side give-up behavior across the full stack.

use perpetual_ws::{
    FaultMode, PassiveService, PassiveUtils, Poll, Service, ServiceCtx, SystemBuilder, WsEvent,
};
use pws_simnet::{SimDuration, SimTime};
use pws_soap::{MessageContext, XmlNode};

struct Echo;
impl PassiveService for Echo {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        req.reply_with("", XmlNode::new("ok").with_text(req.body().text.clone()))
    }
}

#[test]
fn crashed_target_primary_is_replaced_by_view_change() {
    // Crash the target group's initial primary (replica 0) at the network
    // level before any traffic: the group must view-change and still serve.
    let mut b = SystemBuilder::new(61);
    b.passive_service("svc", 4, |_| Box::new(Echo));
    b.scripted_client("user", "svc", 4);
    let mut sys = b.build();
    let primary_node = {
        // service groups are registered before clients: replica 0 of the
        // first service is simnet node 0.
        pws_simnet::NodeId::from_raw(0)
    };
    sys.sim_mut().net_mut().crash(primary_node);
    sys.run_until(SimTime::from_secs(120));
    assert_eq!(sys.client_replies("user").len(), 4);
    assert!(
        sys.metrics().counter("perpetual.view_changes") > 0,
        "a view change must have replaced the crashed primary"
    );
}

#[test]
fn healed_partition_lets_straggler_catch_up_on_new_requests() {
    // Partition one backup replica away, serve traffic, heal, serve more:
    // the group never loses liveness (quorums of 3 suffice), and after the
    // heal the system still works end to end.
    let mut b = SystemBuilder::new(67);
    b.passive_service("svc", 4, |_| Box::new(Echo));
    b.scripted_client_windowed("user", "svc", 8, 1);
    let mut sys = b.build();
    let backup = pws_simnet::NodeId::from_raw(3);
    // Sever the backup from its peers (both directions, all peers).
    for peer in 0..3u32 {
        sys.sim_mut()
            .net_mut()
            .partition_both(backup, pws_simnet::NodeId::from_raw(peer));
    }
    sys.run_for(SimDuration::from_secs(20));
    let before = sys.client_replies("user").len();
    assert!(before >= 1, "group of 3 correct replicas must keep serving");
    sys.sim_mut().net_mut().heal_all();
    sys.run_until(SimTime::from_secs(240));
    assert_eq!(sys.client_replies("user").len(), 8);
}

#[test]
fn agreed_time_is_monotone_consistent_even_with_byzantine_backup() {
    // One target replica lies in replies; time votes still come from the
    // (correct) primary and all replicas answer with the same values.
    #[derive(Default)]
    struct Clock {
        last: u64,
        serving: Option<MessageContext>,
    }
    impl Service for Clock {
        fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
            match ev {
                WsEvent::Request { request } => {
                    ctx.query_time();
                    self.serving = Some(request);
                    Poll::time()
                }
                WsEvent::Time { millis, .. } => {
                    assert!(millis >= self.last, "agreed clock must not go backwards");
                    self.last = millis;
                    let req = self.serving.take().expect("time answers a request");
                    let reply = req.reply_with("", XmlNode::new("t").with_text(millis.to_string()));
                    ctx.reply(reply, &req);
                    Poll::request()
                }
                _ => Poll::request(),
            }
        }
    }
    let mut b = SystemBuilder::new(71);
    b.service("clock", 4, |_| Box::<Clock>::default());
    b.fault("clock", 2, FaultMode::CorruptReplies);
    b.scripted_client_windowed("user", "clock", 5, 1);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    let replies = sys.client_replies("user");
    assert_eq!(replies.len(), 5);
    let mut prev = 0u64;
    for r in &replies {
        let t: u64 = r.body().text.parse().expect("numeric time");
        assert!(t >= prev);
        prev = t;
    }
}

#[test]
fn client_give_up_timeout_keeps_closed_loop_running() {
    // Target fully compromised; a windowed client with a give-up timeout
    // must keep cycling (abandoning calls) instead of wedging.
    let mut b = SystemBuilder::new(73);
    b.passive_service("dead", 4, |_| Box::new(Echo));
    for i in 0..4 {
        b.fault("dead", i, FaultMode::Silent);
    }
    b.scripted_client_windowed("user", "dead", 5, 1);
    b.client_timeout(SimDuration::from_secs(2));
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    assert_eq!(sys.client_replies("user").len(), 0);
    assert!(
        sys.metrics().counter("client.abandoned") >= 4,
        "client must abandon and move on: {}",
        sys.metrics().counter("client.abandoned")
    );
}

#[test]
fn batch_atomicity_holds_across_flapping_partitions() {
    // A *flapping* partition schedule (new simnet fault mode): replica 3's
    // links to every peer go down 40 ms / up 60 ms in a loop while a
    // windowed client drives batched load. The batch-atomicity invariant:
    // batches are ordered or dropped whole, so no replica's execution
    // history may diverge — once the flapping stops and checkpoints pull
    // the straggler forward, all four execution chains must be identical,
    // and the client saw every request exactly once throughout.
    let total = 1_500u64;
    let mut b = SystemBuilder::new(83);
    b.checkpoint_interval(16);
    b.passive_service("svc", 4, |_| Box::new(Echo));
    b.scripted_client_windowed("user", "svc", total, 4);
    let mut sys = b.build();
    let flappy = pws_simnet::NodeId::from_raw(3);
    for peer in 0..3u32 {
        sys.sim_mut().net_mut().flap_partition_both(
            flappy,
            pws_simnet::NodeId::from_raw(peer),
            SimTime::from_millis(50),
            SimDuration::from_millis(40),
            SimDuration::from_millis(60),
        );
    }
    // Flap through the first stretch of the load, then stop mid-run so
    // post-heal traffic and checkpoint boundaries cover every slot the
    // straggler lost (the load runs well past the heal).
    sys.run_until(SimTime::from_millis(400));
    assert!(
        sys.metrics().counter("net.messages_lost") > 0,
        "the flap schedule must actually sever links"
    );
    sys.sim_mut().net_mut().clear_flaps();
    sys.run_until(SimTime::from_secs(240));

    // Exactly-once at the client: every request answered, none twice.
    let replies = sys.client_replies("user");
    assert_eq!(replies.len(), total as usize);
    let mut seen = std::collections::HashSet::new();
    for r in &replies {
        let rid = r.addressing().relates_to.clone().expect("correlated");
        assert!(seen.insert(rid), "duplicate reply under partition flaps");
    }

    // Batch atomicity across replicas: identical execution chains — the
    // flapped replica included, courtesy of checkpoint state transfer.
    let frontier = sys.replica_mut("svc", 0).unwrap().bft_last_executed();
    let chain0 = sys.replica_mut("svc", 0).unwrap().bft_execution_chain();
    for idx in 1..4 {
        let r = sys.replica_mut("svc", idx).unwrap();
        assert_eq!(r.bft_last_executed(), frontier, "replica {idx} frontier");
        assert_eq!(r.bft_execution_chain(), chain0, "replica {idx} diverged");
    }
}

#[test]
fn seeded_randomness_is_identical_across_replicas_and_runs() {
    struct RandomService;
    impl Service for RandomService {
        fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
            if let WsEvent::Request { request } = ev {
                let r = ctx.random_u64();
                let reply = request.reply_with("", XmlNode::new("r").with_text(r.to_string()));
                ctx.reply(reply, &request);
            }
            Poll::request()
        }
    }
    let run = |seed: u64| -> Vec<String> {
        let mut b = SystemBuilder::new(seed);
        b.service("rng", 4, |_| Box::new(RandomService));
        b.scripted_client_windowed("user", "rng", 3, 1);
        let mut sys = b.build();
        sys.run_until(SimTime::from_secs(60));
        sys.client_replies("user")
            .iter()
            .map(|r| r.body().text.clone())
            .collect()
    };
    let a = run(5);
    // Replies exist at all means 2f+1 replicas agreed on each random value.
    assert_eq!(a.len(), 3);
    assert_eq!(a, run(5), "same seed, same agreed random stream");
    assert_ne!(a, run(6), "different seed, different stream");
}

#[test]
fn message_ids_correlate_replies_under_pipelining() {
    // Window 5 with an echo: every reply must carry a RelatesTo matching a
    // request that was actually sent, with no duplicates.
    let mut b = SystemBuilder::new(79);
    b.passive_service("svc", 4, |_| Box::new(Echo));
    b.scripted_client_windowed("user", "svc", 10, 5);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    let replies = sys.client_replies("user");
    assert_eq!(replies.len(), 10);
    let mut seen = std::collections::HashSet::new();
    for r in &replies {
        let rid = r
            .addressing()
            .relates_to
            .clone()
            .expect("reply has RelatesTo");
        assert!(rid.starts_with("urn:uuid:user-"), "rid={rid}");
        assert!(seen.insert(rid), "duplicate correlation id");
    }
}
