//! Sharded service groups end-to-end.
//!
//! The acceptance bar (ISSUE 5): every request lands on exactly its owning
//! shard (zero cross-shard leakage, audited *at the shards*), per-shard
//! replica state digests converge, same-seed runs are byte-identical, and
//! cross-shard requests are rejected with the typed error. The extended
//! smoke (CI: `PWS_SHARD_SMOKE=1`) additionally runs checkpointing,
//! proactive recovery, and a churny stale-drop inside a sharded topology —
//! every per-group subsystem multiplied across the shard fan-out.

use perpetual_ws::{
    Poll, RendezvousRouter, Router, Service, ServiceCtx, ServiceExecutor, System, SystemBuilder,
    WsEvent,
};
use pws_perpetual::{FaultMode, PerpetualReplica};
use pws_simnet::SimTime;
use pws_soap::{MessageContext, XmlNode};

const SHARDS: u32 = 4;

/// A keyed service that answers with its own shard id and *audits*
/// ownership: any request whose key the router assigns elsewhere counts as
/// leakage.
struct ShardEcho {
    shard: u32,
    shards: u32,
    served: u64,
    leaked: u64,
}

impl ShardEcho {
    fn new(shard: u32, shards: u32) -> Self {
        ShardEcho {
            shard,
            shards,
            served: 0,
            leaked: 0,
        }
    }
}

impl Service for ShardEcho {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        if let WsEvent::Request { request } = ev {
            let key = request.body().text.clone();
            self.served += 1;
            if RendezvousRouter::new().shard(&key, self.shards) != self.shard {
                self.leaked += 1;
            }
            let reply = request.reply_with(
                "",
                XmlNode::new("shardResult").with_text(format!("{}:{}", self.shard, key)),
            );
            ctx.reply(reply, &request);
        }
        Poll::request()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut v = self.shard.to_be_bytes().to_vec();
        v.extend(self.served.to_be_bytes());
        v.extend(self.leaked.to_be_bytes());
        v
    }

    fn restore(&mut self, snapshot: &[u8]) {
        self.shard = u32::from_be_bytes(snapshot[0..4].try_into().unwrap());
        self.served = u64::from_be_bytes(snapshot[4..12].try_into().unwrap());
        self.leaked = u64::from_be_bytes(snapshot[12..20].try_into().unwrap());
    }
}

fn build_sharded(seed: u64, per_client: u64) -> System {
    let mut b = SystemBuilder::new(seed);
    b.sharded("kv", SHARDS, 4, |shard, _| {
        Box::new(ShardEcho::new(shard, SHARDS))
    });
    b.scripted_client_windowed("alice", "kv", per_client, 8);
    b.scripted_client_windowed("bob", "kv", per_client, 8);
    b.build()
}

fn shard_service(sys: &mut System, shard: u32, idx: u32) -> &mut ShardEcho {
    let name = format!("kv#{shard}");
    let replica: &mut PerpetualReplica = sys.replica_mut(&name, idx).expect("replica exists");
    replica
        .executor_mut::<ServiceExecutor>()
        .expect("service executor")
        .service_mut::<ShardEcho>()
        .expect("shard echo")
}

#[test]
fn every_request_lands_on_exactly_its_owning_shard() {
    let per_client = 40u64;
    let mut sys = build_sharded(501, per_client);
    sys.run_until(SimTime::from_secs(120));
    let router = RendezvousRouter::new();

    // Client view: each reply names the shard that served it, and it must
    // be the shard the router assigns the key.
    for client in ["alice", "bob"] {
        let replies = sys.client_replies(client);
        assert_eq!(replies.len(), per_client as usize, "{client} completed");
        for r in &replies {
            let text = r.body().text.clone();
            let (shard, key) = text.split_once(':').expect("shard:key reply");
            assert_eq!(
                shard.parse::<u32>().unwrap(),
                router.shard(key, SHARDS),
                "key {key} answered by the wrong shard"
            );
        }
    }

    // Shard view: zero leakage, every shard engaged, nothing lost or
    // duplicated across the partition.
    let mut served_total = 0;
    for shard in 0..SHARDS {
        let mut shard_served = 0;
        for idx in 0..4 {
            let svc = shard_service(&mut sys, shard, idx);
            assert_eq!(
                svc.leaked, 0,
                "shard {shard} replica {idx} saw foreign keys"
            );
            shard_served = svc.served;
        }
        assert!(shard_served > 0, "shard {shard} never served");
        served_total += shard_served;
    }
    assert_eq!(served_total, 2 * per_client, "exactly-once across shards");

    // Dedup compaction survives sharding: external events dedup on a
    // dense per-(caller, target) sequence number, so scattering each
    // client's global request stream across four shards leaves no
    // permanent holes — every shard's executed set stays O(callers), not
    // O(history).
    for shard in 0..SHARDS {
        let name = format!("kv#{shard}");
        let (ids, entries) = sys.replica_mut(&name, 0).unwrap().bft_dedup_footprint();
        assert!(ids > 0, "shard {shard} executed something");
        assert!(
            entries <= 8,
            "shard {shard} dedup degenerated: {entries} wire entries for {ids} ids"
        );
    }

    // Routing observability: one routed count per fired request, spread
    // over all four per-shard counters, and no rejects.
    let m = sys.metrics();
    assert_eq!(m.counter("clbft.shard.routed"), 2 * per_client);
    assert_eq!(m.counter("clbft.shard.cross_rejected"), 0);
    let per_shard: u64 = (0..SHARDS)
        .map(|k| {
            let gid = sys.group(&format!("kv#{k}"));
            sys.metrics().counter(&format!("clbft.shard.route.{gid}"))
        })
        .sum();
    assert_eq!(per_shard, 2 * per_client, "per-shard counters sum to total");
}

#[test]
fn per_shard_state_digests_converge_and_same_seed_runs_are_byte_identical() {
    let fingerprint = |seed: u64| {
        let mut sys = build_sharded(seed, 30);
        sys.run_until(SimTime::from_secs(120));
        // Within each shard every replica must hold identical state: same
        // execution chain, same application snapshot bytes.
        for shard in 0..SHARDS {
            let name = format!("kv#{shard}");
            let (chain0, snap0) = {
                let r = sys.replica_mut(&name, 0).unwrap();
                (r.bft_execution_chain(), r.service_snapshot())
            };
            for idx in 1..4 {
                let r = sys.replica_mut(&name, idx).unwrap();
                assert_eq!(
                    r.bft_execution_chain(),
                    chain0,
                    "shard {shard} replica {idx} chain diverged"
                );
                assert_eq!(
                    r.service_snapshot(),
                    snap0,
                    "shard {shard} replica {idx} snapshot diverged"
                );
            }
        }
        sys.sim_mut().trace_digest().value()
    };
    let a = fingerprint(777);
    let b = fingerprint(777);
    assert_eq!(a, b, "same seed must reproduce the identical event stream");
    assert_ne!(a, fingerprint(778), "different seeds must diverge");
}

/// A service that issues one cross-shard request (keys owned by different
/// shards, joined with `|`) and one single-key request, recording what
/// came back.
struct CrossCaller {
    cross_key: String,
    good_key: String,
    cross_fault: Option<String>,
    good_ok: bool,
}

impl Service for CrossCaller {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Init { .. } => {
                let mut bad = MessageContext::request("urn:svc:kv", "get");
                bad.body_mut().name = "get".into();
                bad.body_mut().text = self.cross_key.clone();
                let _ = ctx.send(bad);
                let mut good = MessageContext::request("urn:svc:kv", "get");
                good.body_mut().name = "get".into();
                good.body_mut().text = self.good_key.clone();
                let _ = ctx.send(good);
                Poll::any_reply()
            }
            WsEvent::Reply { reply, .. } => {
                match reply.envelope().as_fault() {
                    Some(f) => self.cross_fault = Some(f.reason.clone()),
                    None => self.good_ok = true,
                }
                if self.cross_fault.is_some() && self.good_ok {
                    Poll::Done
                } else {
                    Poll::any_reply()
                }
            }
            _ => Poll::Next,
        }
    }
}

#[test]
fn cross_shard_requests_are_rejected_with_the_typed_error() {
    // Find two keys owned by different shards (the first two distinct
    // owners in a numeric probe).
    let router = RendezvousRouter::new();
    let good_key = "0".to_owned();
    let good_shard = router.shard(&good_key, SHARDS);
    let other = (1..100)
        .map(|i| i.to_string())
        .find(|k| router.shard(k, SHARDS) != good_shard)
        .expect("some key lands elsewhere");
    let cross_key = format!("{good_key}|{other}");

    let mut b = SystemBuilder::new(91);
    b.sharded("kv", SHARDS, 4, |shard, _| {
        Box::new(ShardEcho::new(shard, SHARDS))
    });
    let (ck, gk) = (cross_key.clone(), good_key.clone());
    b.service("caller", 1, move |_| {
        Box::new(CrossCaller {
            cross_key: ck.clone(),
            good_key: gk.clone(),
            cross_fault: None,
            good_ok: false,
        })
    });
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));

    let caller = sys.replica_mut("caller", 0).unwrap();
    let svc = caller
        .executor_mut::<ServiceExecutor>()
        .unwrap()
        .service_mut::<CrossCaller>()
        .unwrap();
    assert!(svc.good_ok, "the single-key request must succeed");
    let reason = svc.cross_fault.clone().expect("cross-shard send faulted");
    assert!(
        reason.contains("cross-shard"),
        "typed rejection reason, got: {reason}"
    );
    let m = sys.metrics();
    assert_eq!(m.counter("clbft.shard.cross_rejected"), 1);
    assert!(m.counter("clbft.shard.routed") >= 1, "good key was routed");
}

/// Extended sharded smoke, run by CI with `PWS_SHARD_SMOKE=1` on every
/// push: checkpointing, a proactive-recovery rotation, and a churny
/// stale-drop all running *inside* a sharded topology under client load —
/// the per-group subsystems of PRs 2–4 multiplied across shards.
#[test]
fn sharding_smoke_extended() {
    if std::env::var("PWS_SHARD_SMOKE").is_err() {
        return;
    }
    let per_client = 400u64;
    let mut b = SystemBuilder::new(9_105);
    b.checkpoint_interval(16);
    b.proactive_recovery(pws_simnet::SimDuration::from_millis(900));
    b.sharded("kv", SHARDS, 4, |shard, _| {
        Box::new(ShardEcho::new(shard, SHARDS))
    });
    // A churny wipe inside one shard: only lag evidence brings it back.
    b.fault("kv#1", 2, FaultMode::StaleDrop { after_ms: 1_500 });
    b.scripted_client_windowed("alice", "kv", per_client, 8);
    b.scripted_client_windowed("bob", "kv", per_client, 8);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));

    assert_eq!(sys.client_replies("alice").len(), per_client as usize);
    assert_eq!(sys.client_replies("bob").len(), per_client as usize);
    let m = sys.metrics();
    assert!(
        m.counter("clbft.recovery.stale_drops") >= 1,
        "fault engaged"
    );
    assert!(
        m.counter("clbft.recovery.installs") >= 1,
        "state transfer ran"
    );
    assert!(
        m.counter("clbft.recovery.proactive_restarts") >= SHARDS as u64,
        "every shard rotated at least one replica"
    );
    for shard in 0..SHARDS {
        let name = format!("kv#{shard}");
        let chain0 = sys.replica_mut(&name, 0).unwrap().bft_execution_chain();
        for idx in 1..4 {
            let r = sys.replica_mut(&name, idx).unwrap();
            assert_eq!(r.bft_execution_chain(), chain0, "shard {shard} diverged");
        }
        for idx in 0..4 {
            let svc = shard_service(&mut sys, shard, idx);
            assert_eq!(svc.leaked, 0, "leakage under churn at shard {shard}");
        }
    }
}
