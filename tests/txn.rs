//! Cross-shard transactions and live resharding end-to-end (ISSUE 7).
//!
//! The acceptance bar: a cross-shard transaction under a flapping
//! partition — and under a coordinator-primary crash between prepare and
//! commit — commits or aborts atomically on every participant with zero
//! duplicate executions; `System::add_shard` under a 600-request load
//! completes with zero client-visible errors while migrating exactly the
//! keys rendezvous routing reassigns; and same-seed runs of the whole
//! elastic scenario are byte-identical.

use bytes::Bytes;
use perpetual_ws::{
    Poll, RendezvousRouter, Router, Service, ServiceCtx, ServiceExecutor, System, SystemBuilder,
    TxnService, TxnShim, UriMap, WsEvent, TXN_ABORTED_FAULT, WRONG_SHARD_FAULT,
};
use proptest::prelude::*;
use pws_perpetual::{CallId, ClientCore, ClientEvent};
use pws_simnet::{Context, Node, NodeId, SimDuration, SimTime, TimerId};
use pws_soap::engine::Engine;
use pws_soap::{MessageContext, XmlNode};
use std::collections::BTreeMap;
use std::sync::Arc;

// ------------------------------------------------------------------ fixture

/// A transactional KV fixture: every applied operation increments a
/// per-key counter, so "exactly once" is directly auditable — a key's
/// count must equal the number of committed operations that named it.
struct TxnKv {
    shard: u32,
    counts: BTreeMap<String, u64>,
}

impl TxnKv {
    fn new(shard: u32) -> Self {
        TxnKv {
            shard,
            counts: BTreeMap::new(),
        }
    }

    fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

impl Service for TxnKv {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        if let WsEvent::Request { request } = ev {
            let key = request.body().text.clone();
            let n = self.counts.entry(key.clone()).or_insert(0);
            *n += 1;
            let reply = request.reply_with(
                "",
                XmlNode::new("putResult").with_text(format!("{}:{key}={n}", self.shard)),
            );
            ctx.reply(reply, &request);
        }
        Poll::Next
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend((self.counts.len() as u32).to_be_bytes());
        for (k, n) in &self.counts {
            v.extend((k.len() as u32).to_be_bytes());
            v.extend(k.as_bytes());
            v.extend(n.to_be_bytes());
        }
        v
    }

    fn restore(&mut self, snapshot: &[u8]) {
        self.counts.clear();
        let mut at = 4usize;
        let len = u32::from_be_bytes(snapshot[0..4].try_into().unwrap()) as usize;
        for _ in 0..len {
            let kl = u32::from_be_bytes(snapshot[at..at + 4].try_into().unwrap()) as usize;
            at += 4;
            let k = String::from_utf8(snapshot[at..at + kl].to_vec()).unwrap();
            at += kl;
            let n = u64::from_be_bytes(snapshot[at..at + 8].try_into().unwrap());
            at += 8;
            self.counts.insert(k, n);
        }
    }
}

impl TxnService for TxnKv {
    fn txn_execute(&mut self, _op: &str, keys: &[String]) -> String {
        let mut details = Vec::new();
        for k in keys {
            let n = self.counts.entry(k.clone()).or_insert(0);
            *n += 1;
            details.push(format!("{}:{k}={n}", self.shard));
        }
        details.join(",")
    }

    fn export_keys(&mut self, moved: &dyn Fn(&str) -> bool) -> Vec<(String, Vec<u8>)> {
        let gone: Vec<String> = self.counts.keys().filter(|k| moved(k)).cloned().collect();
        gone.iter()
            .map(|k| {
                let n = self.counts.remove(k).unwrap();
                (k.clone(), n.to_be_bytes().to_vec())
            })
            .collect()
    }

    fn import_keys(&mut self, entries: &[(String, Vec<u8>)]) {
        for (k, v) in entries {
            let n = u64::from_be_bytes(v.as_slice().try_into().unwrap());
            *self.counts.entry(k.clone()).or_insert(0) += n;
        }
    }
}

// ------------------------------------------------------------------- driver

/// A closed-loop client that fires multi-key (cross-shard) requests one at
/// a time and tallies commit replies vs. typed abort faults.
struct TxnDriver {
    core: ClientCore,
    uris: Arc<UriMap>,
    engine: Engine,
    pairs: Vec<String>,
    next: usize,
    outstanding: Option<(CallId, SimTime)>,
    inflight: Option<String>,
    retried: bool,
    commits: u64,
    aborts: u64,
    redirect_retries: u64,
    other_faults: u64,
    sweep: Option<TimerId>,
}

const DRIVER_SWEEP: SimDuration = SimDuration::from_millis(900);

impl TxnDriver {
    fn new(core: ClientCore, uris: Arc<UriMap>, pairs: Vec<String>) -> Self {
        TxnDriver {
            core,
            uris,
            engine: Engine::with_id_prefix("txn-driver".to_owned()),
            pairs,
            next: 0,
            outstanding: None,
            inflight: None,
            retried: false,
            commits: 0,
            aborts: 0,
            redirect_retries: 0,
            other_faults: 0,
            sweep: None,
        }
    }

    fn fire(&mut self, ctx: &mut Context<'_>) {
        let Some(keys) = self.pairs.get(self.next).cloned() else {
            return;
        };
        self.next += 1;
        self.retried = false;
        self.fire_keys(keys, ctx);
    }

    /// Re-routes at the *current* epoch and fires: the typed WrongShard
    /// guidance is "re-resolve and retry once", and re-routing is what
    /// makes the bounded retry land on the key's new owner.
    fn fire_keys(&mut self, keys: String, ctx: &mut Context<'_>) {
        let mut mc = MessageContext::request("urn:svc:kv", "put");
        mc.body_mut().name = "put".into();
        mc.body_mut().text = keys.clone();
        self.inflight = Some(keys);
        mc.addressing_mut().reply_to = Some("urn:txn-driver".to_owned());
        let (_, target) = self
            .uris
            .route("urn:svc:kv", &mc.body().text)
            .expect("cross-shard keys route to the coordinator");
        if self.engine.run_out_pipe(&mut mc).is_err() {
            return;
        }
        let Ok(bytes) = mc.to_bytes() else { return };
        let call = self.core.call(ctx, target, bytes);
        self.outstanding = Some((call, ctx.now()));
        if self.sweep.is_none() {
            self.sweep = Some(ctx.set_timer(DRIVER_SWEEP));
        }
    }
}

impl std::fmt::Debug for TxnDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnDriver")
            .field("next", &self.next)
            .field("commits", &self.commits)
            .field("aborts", &self.aborts)
            .finish_non_exhaustive()
    }
}

impl Node for TxnDriver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.fire(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
        if let Some(ClientEvent::Reply { call, payload }) = self.core.on_message(&msg, ctx) {
            if self.outstanding.map(|(c, _)| c) != Some(call) {
                return;
            }
            self.outstanding = None;
            if let Ok(mc) = MessageContext::from_bytes(&payload) {
                match mc.envelope().as_fault() {
                    Some(f) if f.code == TXN_ABORTED_FAULT => self.aborts += 1,
                    Some(f) if f.code == WRONG_SHARD_FAULT && !self.retried => {
                        // Typed retry guidance: one bounded re-route.
                        self.retried = true;
                        self.redirect_retries += 1;
                        if let Some(keys) = self.inflight.take() {
                            self.fire_keys(keys, ctx);
                        }
                        return;
                    }
                    Some(_) => self.other_faults += 1,
                    None if mc.body().text.starts_with("txn=commit") => self.commits += 1,
                    None => self.other_faults += 1,
                }
            }
            self.fire(ctx);
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_>) {
        if Some(timer) != self.sweep {
            return;
        }
        self.sweep = None;
        if let Some((call, sent)) = self.outstanding {
            if ctx.now() - sent >= DRIVER_SWEEP {
                self.core.retry(ctx, call);
            }
            self.sweep = Some(ctx.set_timer(DRIVER_SWEEP));
        }
    }
}

// ------------------------------------------------------------------ helpers

/// `count` key pairs `a|b` where `a` is owned by shard 0 and `b` by
/// shard 1 (of 2), all keys distinct — so sequential transactions never
/// conflict on locks and the coordinator is always shard 0.
fn cross_pairs(count: usize) -> Vec<String> {
    let router = RendezvousRouter::new();
    let mut on0 = Vec::new();
    let mut on1 = Vec::new();
    let mut i = 0u64;
    while on0.len() < count || on1.len() < count {
        let k = format!("x{i}");
        if router.shard(&k, 2) == 0 {
            on0.push(k);
        } else {
            on1.push(k);
        }
        i += 1;
    }
    (0..count)
        .map(|j| format!("{}|{}", on0[j], on1[j]))
        .collect()
}

fn kv_state(sys: &mut System, shard: u32, idx: u32) -> (u64, usize, usize) {
    let name = format!("kv#{shard}");
    let shim = sys
        .replica_mut(&name, idx)
        .expect("replica exists")
        .executor_mut::<ServiceExecutor>()
        .expect("service executor")
        .service_mut::<TxnShim>()
        .expect("txn shim");
    let locked = shim.locked_keys();
    let fenced = shim.fenced_keys().count();
    let kv = shim.inner_mut::<TxnKv>().expect("kv inner");
    (kv.total(), locked, fenced)
}

fn build_txn_system(seed: u64, pairs: Vec<String>) -> System {
    let mut b = SystemBuilder::new(seed);
    b.checkpoint_interval(16);
    b.sharded_txn("kv", 2, 4, |shard, _| Box::new(TxnKv::new(shard)));
    b.custom_client("driver", move |core, uris| {
        Box::new(TxnDriver::new(core, uris, pairs))
    });
    b.build()
}

fn driver_tally(sys: &mut System) -> (u64, u64, u64) {
    let node = sys.client_node("driver");
    let d = sys
        .sim_mut()
        .node_mut::<TxnDriver>(node)
        .expect("txn driver");
    (d.commits, d.aborts, d.other_faults)
}

// -------------------------------------------------------------------- tests

#[test]
fn cross_shard_transactions_are_atomic_under_flapping_partitions() {
    // Flap one backup of each shard against all its peers (40 ms down /
    // 60 ms up) through the first stretch of a 60-transaction stream:
    // links that come back just long enough to leak partial quorums are
    // the churniest schedule the simnet offers. The load runs well past
    // the heal so checkpoint boundaries pull the stragglers forward.
    // Every transaction must still resolve, and each shard's per-key
    // counters must equal the commit count exactly — no duplicate, no
    // lost, no half-applied txn.
    let total = 60usize;
    let mut sys = build_txn_system(7_001, cross_pairs(total));
    // kv#0 = nodes 0..4, kv#1 = nodes 4..8 (services register first).
    for (flappy, peers) in [(3u32, 0u32..3), (7u32, 4u32..7)] {
        for peer in peers {
            sys.sim_mut().net_mut().flap_partition_both(
                NodeId::from_raw(flappy),
                NodeId::from_raw(peer),
                SimTime::from_millis(50),
                SimDuration::from_millis(40),
                SimDuration::from_millis(60),
            );
        }
    }
    sys.run_until(SimTime::from_millis(400));
    sys.sim_mut().net_mut().clear_flaps();
    sys.run_until(SimTime::from_secs(240));

    let (commits, aborts, other) = driver_tally(&mut sys);
    assert_eq!(other, 0, "no untyped failures");
    assert_eq!(commits + aborts, total as u64, "every transaction resolved");
    assert!(commits > 0, "some transactions must commit");

    // Atomic and exactly-once at every replica of both shards: each
    // committed pair incremented exactly one key on each shard.
    for shard in 0..2 {
        for idx in 0..4 {
            let (applied, locked, _) = kv_state(&mut sys, shard, idx);
            assert_eq!(
                applied, commits,
                "shard {shard} replica {idx} applied {applied} != {commits} commits"
            );
            assert_eq!(locked, 0, "shard {shard} replica {idx} holds locks");
        }
        // Replica convergence: identical execution chains per shard.
        let name = format!("kv#{shard}");
        let chain0 = sys.replica_mut(&name, 0).unwrap().bft_execution_chain();
        for idx in 1..4 {
            let r = sys.replica_mut(&name, idx).unwrap();
            assert_eq!(r.bft_execution_chain(), chain0, "shard {shard} diverged");
        }
    }
    // Every coordinator replica that *executed* the decision counted it;
    // a straggler that caught up through checkpoint state transfer
    // installs the result without replaying, so the quorum bound is the
    // floor and full replication the ceiling.
    let committed_metric = sys.metrics().counter("clbft.txn.committed");
    assert!(
        (3 * commits..=4 * commits).contains(&committed_metric),
        "decision ordering count {committed_metric} out of band for {commits} commits"
    );
}

#[test]
fn coordinator_primary_crash_between_prepare_and_commit_converges() {
    // Drive cross-shard transactions and crash the coordinator shard's
    // primary at the precise window where a participant has ordered a
    // prepare (clbft.txn.prepared moved) but no coordinator replica has
    // ordered the decision yet (clbft.txn.committed still behind). The
    // surviving three replicas must view-change, finish the in-flight
    // 2PC from their replicated coordinator state, and keep serving —
    // with zero duplicate executions anywhere.
    let total = 12usize;
    let mut sys = build_txn_system(7_002, cross_pairs(total));
    let mut crashed = false;
    for _ in 0..4_000 {
        sys.run_for(SimDuration::from_millis(1));
        let prepared = sys.metrics().counter("clbft.txn.prepared");
        let committed = sys.metrics().counter("clbft.txn.committed");
        let aborted = sys.metrics().counter("clbft.txn.aborted");
        if prepared > 0 && committed + aborted < prepared {
            // Between prepare and commit: kill the coordinator primary.
            sys.sim_mut().net_mut().crash(NodeId::from_raw(0));
            crashed = true;
            break;
        }
    }
    assert!(crashed, "never caught a transaction between phases");
    sys.run_until(SimTime::from_secs(300));

    let (commits, aborts, other) = driver_tally(&mut sys);
    assert_eq!(other, 0, "no untyped failures");
    assert_eq!(commits + aborts, total as u64, "every transaction resolved");
    assert!(
        commits > 0,
        "the group must keep committing after the crash"
    );
    assert!(
        sys.metrics().counter("perpetual.view_changes") > 0,
        "the crash must force a view change"
    );

    // Zero duplicates on every *surviving* replica (replica 0 of shard 0
    // is frozen mid-flight by the crash), and full participant agreement.
    for idx in 1..4 {
        let (applied, locked, _) = kv_state(&mut sys, 0, idx);
        assert_eq!(applied, commits, "coordinator replica {idx} duplicated");
        assert_eq!(locked, 0, "coordinator replica {idx} holds locks");
    }
    for idx in 0..4 {
        let (applied, locked, _) = kv_state(&mut sys, 1, idx);
        assert_eq!(applied, commits, "participant replica {idx} duplicated");
        assert_eq!(locked, 0, "participant replica {idx} holds locks");
    }
    let chain0 = sys.replica_mut("kv#0", 1).unwrap().bft_execution_chain();
    for idx in 2..4 {
        let r = sys.replica_mut("kv#0", idx).unwrap();
        assert_eq!(r.bft_execution_chain(), chain0, "survivors diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash-timing sweep: whatever instant the coordinator primary dies
    /// at — before, between, or after the 2PC phases — and whatever the
    /// network schedule (seed), both shards apply exactly the committed
    /// transactions: equal totals on every surviving replica, zero
    /// duplicates, no stuck locks.
    #[test]
    fn coordinator_crash_at_any_instant_never_duplicates(
        seed in 1u64..10_000,
        crash_ms in 5u64..160,
    ) {
        let total = 6usize;
        let mut sys = build_txn_system(seed, cross_pairs(total));
        sys.run_for(SimDuration::from_millis(crash_ms));
        sys.sim_mut().net_mut().crash(NodeId::from_raw(0));
        sys.run_until(SimTime::from_secs(300));

        let (commits, aborts, other) = driver_tally(&mut sys);
        prop_assert_eq!(other, 0);
        prop_assert_eq!(commits + aborts, total as u64);
        for idx in 1..4 {
            let (applied, locked, _) = kv_state(&mut sys, 0, idx);
            prop_assert_eq!(applied, commits);
            prop_assert_eq!(locked, 0);
        }
        for idx in 0..4 {
            let (applied, locked, _) = kv_state(&mut sys, 1, idx);
            prop_assert_eq!(applied, commits);
            prop_assert_eq!(locked, 0);
        }
    }
}

// --------------------------------------------------------------- resharding

/// Runs the full elastic scenario: 2 shards + 1 provisioned spare under a
/// 600-request scripted load, `add_shard` fired mid-load, run to
/// completion. Returns the trace digest plus the observables the
/// assertions need, so the same-seed determinism check reuses one body.
fn elastic_run(seed: u64) -> (u64, u64, u64, u64) {
    let per_client = 300u64;
    let mut b = SystemBuilder::new(seed);
    b.checkpoint_interval(16);
    b.sharded_txn("kv", 2, 4, |shard, _| Box::new(TxnKv::new(shard)));
    b.add_shard("kv"); // provision one dormant spare (kv#2)
    b.scripted_client_windowed("alice", "kv", per_client, 8);
    b.scripted_client_windowed("bob", "kv", per_client, 8);
    let mut sys = b.build();

    // Let part of the load land, then grow the deployment online. To
    // exercise the typed redirect deterministically, make alice's links
    // *to* the old shards slow just before the flip: she keeps firing
    // old-epoch requests into an 800 ms pipe, the flip and the export
    // fences land within ~100 ms, and her slow requests then arrive
    // post-fence — any moved key among them draws `pws:WrongShard` and
    // must follow the guidance with one bounded retry at the new epoch.
    let alice = sys.client_node("alice");
    let default_link = sys.sim_mut().net_mut().default_link();
    let slow_link = pws_simnet::LinkConfig {
        base: SimDuration::from_millis(800),
        ..default_link
    };
    let mut flipped = false;
    for _ in 0..2_000 {
        sys.run_for(SimDuration::from_millis(5));
        if sys.metrics().counter("client.web_interactions") >= 150 {
            for raw in 0..8u32 {
                sys.sim_mut()
                    .net_mut()
                    .set_link(alice, NodeId::from_raw(raw), slow_link);
            }
            sys.run_for(SimDuration::from_millis(100));
            let active = sys.add_shard("kv");
            assert_eq!(active, 3, "epoch flips 2 -> 3");
            flipped = true;
            break;
        }
    }
    assert!(flipped, "the load never reached the flip point");
    sys.run_for(SimDuration::from_secs(2));
    assert_eq!(
        sys.metrics().counter("clbft.reshard.completed"),
        1,
        "migration must finish while alice's old-epoch requests crawl"
    );
    for raw in 0..8u32 {
        sys.sim_mut()
            .net_mut()
            .set_link(alice, NodeId::from_raw(raw), default_link);
    }
    sys.run_until(SimTime::from_secs(300));

    // Zero client-visible errors under the flip: every request answered,
    // no faults, nothing abandoned or unroutable.
    for client in ["alice", "bob"] {
        let replies = sys.client_replies(client);
        assert_eq!(replies.len(), per_client as usize, "{client} completed");
        for r in &replies {
            assert!(
                r.envelope().as_fault().is_none(),
                "{client} saw a fault during resharding"
            );
        }
    }
    assert_eq!(sys.metrics().counter("client.route_errors"), 0);
    assert_eq!(sys.metrics().counter("client.abandoned"), 0);

    // The migration ran to completion and rejected nothing.
    let m = sys.metrics();
    assert_eq!(m.counter("clbft.reshard.epoch_flips"), 1);
    assert_eq!(
        m.counter("clbft.reshard.completed"),
        1,
        "migration finished"
    );
    assert_eq!(m.counter("clbft.reshard.rejected_keys"), 0);
    let redirects = m.counter("clbft.reshard.redirects");
    let retries = m.counter("client.route_retries");

    // Only reassigned keys migrated: at the final epoch (3 shards) every
    // key any shard holds must be a key the router assigns to it, the new
    // shard actually owns data, and no fences or locks linger.
    let router = RendezvousRouter::new();
    let mut grand_total = 0u64;
    for shard in 0..3u32 {
        let (applied, locked, _) = kv_state(&mut sys, shard, 0);
        assert_eq!(locked, 0, "shard {shard} holds locks after resharding");
        grand_total += applied;
        let name = format!("kv#{shard}");
        let shim = sys
            .replica_mut(&name, 0)
            .unwrap()
            .executor_mut::<ServiceExecutor>()
            .unwrap()
            .service_mut::<TxnShim>()
            .unwrap();
        assert_eq!(shim.epoch_shards(), 3, "shard {shard} missed the epoch");
        // Fences are the shard's redirect memory for the keys it gave
        // away — every fenced key must indeed belong elsewhere now.
        let fenced: Vec<String> = shim.fenced_keys().map(str::to_owned).collect();
        for key in &fenced {
            assert_ne!(
                router.shard(key, 3),
                shard,
                "shard {shard} fences key {key} it still owns"
            );
        }
        let kv = shim.inner_mut::<TxnKv>().unwrap();
        for key in kv.counts.keys() {
            assert_eq!(
                router.shard(key, 3),
                shard,
                "shard {shard} holds foreign key {key} after the reshard"
            );
        }
        assert!(kv.total() > 0, "shard {shard} owns nothing at epoch 3");
    }
    // Exactly-once across the whole flip: 600 requests, 600 applications
    // (alice and bob share the numeric key space; counts sum over keys).
    assert_eq!(grand_total, 2 * per_client, "lost or duplicated under flip");

    let digest = sys.sim_mut().trace_digest().value();
    (digest, redirects, retries, grand_total)
}

#[test]
fn add_shard_under_load_migrates_exactly_the_reassigned_keys() {
    let (_, redirects, retries, _) = elastic_run(88_001);
    // The flip landed mid-load with ~16 requests in flight, so some
    // old-epoch request must have hit a fence and been redirected — and
    // the client followed each redirect with exactly one bounded retry.
    assert!(redirects > 0, "no in-flight request exercised the fence");
    assert!(retries > 0, "no client followed the typed retry guidance");
    assert!(retries <= redirects, "more retries than redirect faults");
}

#[test]
fn same_seed_elastic_runs_are_byte_identical() {
    let (a, ar, art, _) = elastic_run(88_002);
    let (b, br, brt, _) = elastic_run(88_002);
    assert_eq!(a, b, "same-seed elastic traces must be byte-identical");
    assert_eq!((ar, art), (br, brt), "same-seed metrics must agree");
    let (c, _, _, _) = elastic_run(88_003);
    assert_ne!(a, c, "different seeds must diverge");
}

/// Extended transaction smoke, run by CI with `PWS_TXN_SMOKE=1` on every
/// push: one run stacking everything this subsystem must survive at once —
/// an 80-transaction cross-shard stream through flapping partitions, a
/// coordinator-primary crash mid-stream, and a live `add_shard` that
/// migrates keys out from under in-flight transactions. Exactly-once must
/// hold across all of it.
#[test]
fn txn_smoke_extended() {
    if std::env::var("PWS_TXN_SMOKE").is_err() {
        return;
    }
    let total = 80usize;
    let mut b = SystemBuilder::new(9_701);
    b.checkpoint_interval(16);
    b.sharded_txn("kv", 2, 4, |shard, _| Box::new(TxnKv::new(shard)));
    b.add_shard("kv");
    let pairs = cross_pairs(total);
    b.custom_client("driver", move |core, uris| {
        Box::new(TxnDriver::new(core, uris, pairs))
    });
    let mut sys = b.build();

    // Phase 1: flap one backup of each original shard against its peers
    // (kv#0 = nodes 0..4, kv#1 = 4..8; the spare kv#2 sits at 8..12).
    for (flappy, peers) in [(3u32, 0u32..3), (7u32, 4u32..7)] {
        for peer in peers {
            sys.sim_mut().net_mut().flap_partition_both(
                NodeId::from_raw(flappy),
                NodeId::from_raw(peer),
                SimTime::from_millis(50),
                SimDuration::from_millis(40),
                SimDuration::from_millis(60),
            );
        }
    }
    sys.run_until(SimTime::from_millis(400));
    sys.sim_mut().net_mut().clear_flaps();

    // Phase 2: kill the coordinator shard's primary mid-stream.
    sys.run_until(SimTime::from_secs(2));
    sys.sim_mut().net_mut().crash(NodeId::from_raw(0));

    // Phase 3: scale out while transactions are still flowing.
    sys.run_until(SimTime::from_secs(6));
    assert_eq!(sys.add_shard("kv"), 3, "flip must land epoch 3");
    sys.run_until(SimTime::from_secs(600));

    let (commits, aborts, other) = driver_tally(&mut sys);
    assert_eq!(other, 0, "no untyped failures");
    assert_eq!(commits + aborts, total as u64, "every transaction resolved");
    assert!(commits > 0, "some transactions must commit");
    assert!(
        sys.metrics().counter("perpetual.view_changes") > 0,
        "the primary crash must force a view change"
    );
    assert_eq!(sys.metrics().counter("clbft.reshard.epoch_flips"), 1);
    assert_eq!(sys.metrics().counter("clbft.reshard.completed"), 1);
    assert_eq!(sys.metrics().counter("clbft.reshard.rejected_keys"), 0);

    // Exactly-once across crash + flap + reshard: each commit incremented
    // one key per side, wherever those keys live at epoch 3. Survivors of
    // each shard must agree byte-for-byte.
    let mut grand_total = 0u64;
    for shard in 0..3u32 {
        let first = if shard == 0 { 1 } else { 0 };
        let (applied, locked, _) = kv_state(&mut sys, shard, first);
        assert_eq!(locked, 0, "shard {shard} holds locks at the end");
        grand_total += applied;
        let name = format!("kv#{shard}");
        let chain0 = sys.replica_mut(&name, first).unwrap().bft_execution_chain();
        for idx in (first + 1)..4 {
            let (a, l, _) = kv_state(&mut sys, shard, idx);
            assert_eq!(a, applied, "shard {shard} replica {idx} diverges");
            assert_eq!(l, 0, "shard {shard} replica {idx} holds locks");
            let r = sys.replica_mut(&name, idx).unwrap();
            assert_eq!(r.bft_execution_chain(), chain0, "shard {shard} diverged");
        }
    }
    assert_eq!(
        grand_total,
        2 * commits,
        "lost or duplicated applications across crash + reshard"
    );
}
