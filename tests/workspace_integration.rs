//! Cross-crate integration tests: drive the whole stack (simnet → crypto →
//! clbft → perpetual → soap → perpetual-ws → tpcw) through public APIs.

use perpetual_ws::{
    parse_replicas_xml, FaultMode, PassiveService, PassiveUtils, Poll, Service, ServiceCtx,
    SystemBuilder, WsEvent,
};
use pws_simnet::{SimDuration, SimTime};
use pws_soap::{MessageContext, XmlNode};

struct Echo;
impl PassiveService for Echo {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        req.reply_with("", XmlNode::new("ok").with_text(req.body().text.clone()))
    }
}

#[test]
fn four_tier_chain_works_end_to_end() {
    // client -> gateway(4) -> middle(7) -> backend(4): three replicated
    // tiers with different degrees, all calls synchronous.
    // A synchronous forwarder: one request at a time; while the downstream
    // call is in flight only its reply is admitted (new requests queue).
    struct Forward(&'static str, Option<MessageContext>);
    impl Service for Forward {
        fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
            match ev {
                WsEvent::Request { request } => {
                    let mut call = MessageContext::request(format!("urn:svc:{}", self.0), "echo");
                    call.body_mut().name = "echo".into();
                    call.body_mut().text = request.body().text.clone();
                    let token = ctx.send(call);
                    self.1 = Some(request);
                    Poll::reply(token)
                }
                WsEvent::Reply { reply, .. } => {
                    let req = self.1.take().expect("reply resumes a pending request");
                    let out = req.reply_with(
                        "",
                        XmlNode::new("ok").with_text(format!("{}<{}", self.0, reply.body().text)),
                    );
                    ctx.reply(out, &req);
                    Poll::request()
                }
                _ => Poll::request(),
            }
        }
    }

    let mut b = SystemBuilder::new(31);
    b.service("gateway", 4, |_| Box::new(Forward("middle", None)));
    b.service("middle", 7, |_| Box::new(Forward("backend", None)));
    b.passive_service("backend", 4, |_| Box::new(Echo));
    b.scripted_client("user", "gateway", 3);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    let replies = sys.client_replies("user");
    assert_eq!(replies.len(), 3);
    for r in &replies {
        assert!(
            r.body().text.starts_with("middle<backend<"),
            "chained reply was {:?}",
            r.body().text
        );
    }
}

#[test]
fn fault_isolation_across_three_tiers() {
    // The middle tier's target (backend) is fully compromised; the middle
    // tier aborts deterministically and degrades gracefully, and the
    // gateway/client still get answers.
    #[derive(Default)]
    struct Degrading(Option<MessageContext>);
    impl Service for Degrading {
        fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
            match ev {
                WsEvent::Request { request } => {
                    let mut call = MessageContext::request("urn:svc:backend", "echo");
                    call.body_mut().name = "echo".into();
                    call.body_mut().text = request.body().text.clone();
                    call.options_mut().set_timeout_millis(800);
                    let token = ctx.send(call);
                    self.0 = Some(request);
                    Poll::reply(token)
                }
                WsEvent::Reply { reply, .. } => {
                    let req = self.0.take().expect("pending request");
                    let text = if reply.envelope().as_fault().is_some() {
                        "degraded".to_owned()
                    } else {
                        reply.body().text.clone()
                    };
                    ctx.reply(req.reply_with("", XmlNode::new("ok").with_text(text)), &req);
                    Poll::request()
                }
                _ => Poll::request(),
            }
        }
    }

    let mut b = SystemBuilder::new(37);
    b.service("middle", 4, |_| Box::<Degrading>::default());
    b.passive_service("backend", 4, |_| Box::new(Echo));
    for i in 0..4 {
        b.fault("backend", i, FaultMode::Silent);
    }
    b.scripted_client("user", "middle", 2);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    let replies = sys.client_replies("user");
    assert_eq!(replies.len(), 2, "middle tier must stay live");
    assert!(replies.iter().all(|r| r.body().text == "degraded"));
    assert!(sys.metrics().counter("perpetual.calls_aborted") > 0);
}

#[test]
fn different_replication_degrees_interoperate() {
    for (nc, nt) in [(1u32, 10u32), (10, 1), (7, 4)] {
        struct Caller(&'static str, Option<MessageContext>);
        impl Service for Caller {
            fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
                match ev {
                    WsEvent::Request { request } => {
                        let mut call =
                            MessageContext::request(format!("urn:svc:{}", self.0), "echo");
                        call.body_mut().text = request.body().text.clone();
                        let token = ctx.send(call);
                        self.1 = Some(request);
                        Poll::reply(token)
                    }
                    WsEvent::Reply { reply, .. } => {
                        let req = self.1.take().expect("pending request");
                        let out = req.reply_with(
                            "",
                            XmlNode::new("ok").with_text(reply.body().text.clone()),
                        );
                        ctx.reply(out, &req);
                        Poll::request()
                    }
                    _ => Poll::request(),
                }
            }
        }
        let mut b = SystemBuilder::new(41);
        b.service("front", nc, |_| Box::new(Caller("svc", None)));
        b.passive_service("svc", nt, |_| Box::new(Echo));
        b.scripted_client("user", "front", 2);
        let mut sys = b.build();
        sys.run_until(SimTime::from_secs(120));
        assert_eq!(sys.client_replies("user").len(), 2, "nc={nc} nt={nt}");
    }
}

#[test]
fn deployment_descriptor_drives_group_sizes() {
    let xml = perpetual_ws::deployment::sample_replicas_xml();
    let cfg = parse_replicas_xml(&xml).expect("sample parses");
    let mut b = SystemBuilder::new(5);
    for svc in &cfg.services {
        let n = svc.n();
        match svc.name.as_str() {
            "bookstore" => {
                b.service(&svc.name, n, |_| {
                    Box::new(pws_tpcw::bookstore::Bookstore::new(100, "pge"))
                });
            }
            "pge" => {
                b.service(&svc.name, n, |_| Box::new(pws_tpcw::pge::Pge::new("bank")));
            }
            "bank" => {
                b.passive_service(&svc.name, n, |_| Box::new(pws_tpcw::bank::Bank::new()));
            }
            other => panic!("unexpected service {other}"),
        }
    }
    b.scripted_client("user", "bookstore", 0); // deployment-only smoke
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(5));
    assert_eq!(sys.group("pge").0, 1);
}

#[test]
fn tpcw_more_rbes_more_wips() {
    let run = |rbes| {
        pws_tpcw::run_tpcw(pws_tpcw::TpcwConfig {
            n_bookstore: 1,
            n_pge: 1,
            n_bank: 1,
            rbes,
            duration: SimDuration::from_secs(80),
            warmup: SimDuration::from_secs(10),
            sync_pge: false,
            think_mean: SimDuration::from_secs(7),
            bookstore_shards: 1,
            read_only: false,
            page_cost_scale: 1,
            speculative: false,
            cross_shard_buys: false,
            seed: 11,
        })
    };
    let small = run(7);
    let big = run(28);
    assert!(
        big.wips > small.wips * 2.0,
        "WIPS should scale with offered load: {} vs {}",
        big.wips,
        small.wips
    );
}

#[test]
fn byzantine_pge_replica_does_not_corrupt_orders() {
    let mut b = SystemBuilder::new(13);
    b.service("bookstore", 1, |_| {
        Box::new(pws_tpcw::bookstore::Bookstore::new(100, "pge"))
    });
    b.service("pge", 4, |_| Box::new(pws_tpcw::pge::Pge::new("bank")));
    b.fault("pge", 0, FaultMode::CorruptReplies);
    b.passive_service("bank", 4, |_| Box::new(pws_tpcw::bank::Bank::new()));
    // Drive buy-confirms directly.
    b.scripted_client("buyer", "bookstore", 4);
    let mut sys = b.build();
    // The scripted client sends op "increment", which the bookstore treats
    // as an unknown page; use an RBE-free direct check through metrics
    // instead: run and ensure nothing diverged (replies still arrive).
    sys.run_until(SimTime::from_secs(60));
    assert_eq!(sys.client_replies("buyer").len(), 4);
}
