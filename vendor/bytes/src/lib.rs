//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment for this workspace has no network access, so the
//! handful of external crates the code depends on are vendored as minimal
//! API-compatible shims under `vendor/`. This one provides [`Bytes`] (a
//! cheaply cloneable, immutable byte buffer backed by `Arc<[u8]>`) and
//! [`BytesMut`] (a growable buffer with the big-endian `put_*` writers the
//! wire codecs use). Zero-copy slicing is not reproduced — `Bytes` here
//! always owns its storage — but the semantics visible to this workspace
//! (cheap `Clone`, value equality, `Deref<Target = [u8]>`) match.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable sequence of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the contents as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns the subrange `[begin, end)` as a new `Bytes`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.data[..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }
}
impl From<String> for Bytes {
    fn from(data: String) -> Bytes {
        Bytes::from(data.into_bytes())
    }
}
impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Bytes {
        Bytes::from_static(data.as_bytes())
    }
}
impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Bytes {
        Bytes::from_static(data)
    }
}
impl From<BytesMut> for Bytes {
    fn from(data: BytesMut) -> Bytes {
        data.freeze()
    }
}
impl From<Bytes> for Vec<u8> {
    fn from(data: Bytes) -> Vec<u8> {
        data.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

/// A growable byte buffer with big-endian integer writers.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a `u16` in big-endian order.
    pub fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` in big-endian order.
    pub fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` in big-endian order.
    pub fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    pub fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.data.resize(self.data.len() + cnt, val);
    }

    /// Appends a slice.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Appends a slice (inherent mirror of `Vec::extend_from_slice`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}
impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}
impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", Bytes::copy_from_slice(&self.data))
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut {
            data: data.to_vec(),
        }
    }
}
impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_writers_are_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        assert_eq!(
            &b[..],
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f]
        );
    }

    #[test]
    fn bytes_round_trips_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2u8, 3]));
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut m = BytesMut::with_capacity(4);
        m.extend_from_slice(b"abcd");
        assert_eq!(m.freeze(), Bytes::from_static(b"abcd"));
    }
}
