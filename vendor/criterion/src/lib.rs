//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Supports the subset this workspace's `micro` bench uses: benchmark
//! groups with `measurement_time` / `sample_size`, `bench_function`,
//! `Bencher::iter` / `iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical pipeline it
//! runs a short calibrated loop per benchmark and prints the mean
//! time-per-iteration — good enough to eyeball relative costs, not a
//! replacement for real criterion runs.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-exported for convenience, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup output is sized; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // With `harness = false`, cargo-bench forwards CLI args; the first
        // non-flag argument is a name filter, matching criterion's CLI.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_millis(200),
            sample_size: 20,
            filter: self.filter.clone(),
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        self.benchmark_group("ungrouped").bench_function(id, f);
    }
}

/// A named group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    filter: Option<String>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target measurement time (clamped to keep shim runs short).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time.min(Duration::from_millis(500));
        self
    }

    /// Sets the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measures `f` under the name `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: self.measurement_time,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        println!(
            "bench {full:<40} {:>12.1} ns/iter ({} iters)",
            per_iter.as_nanos() as f64,
            b.iters
        );
    }

    /// Ends the group (no-op beyond parity with criterion's API).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to time the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(10)).sample_size(5);
        let mut ran = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
        g.finish();
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(5));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
