//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, covering only `crossbeam::channel` as used by this workspace.
//!
//! Implemented as a `Mutex<VecDeque>` + `Condvar` MPMC queue so that, like
//! crossbeam's, both halves are `Clone` and a blocked `recv` never starves
//! concurrent `try_recv`/`recv_timeout` callers (the lock is released while
//! waiting). Only unbounded channels are provided; `select!` is not.

#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer multi-consumer channels (unbounded only).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Channel state; the endpoint counts live under the same mutex as the
    /// queue so disconnect checks are atomic with queue operations.
    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing only if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            inner.queue.push_back(msg);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .inner
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).expect("channel poisoned");
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            match inner.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (i, _) = self
                    .shared
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .expect("channel poisoned");
                inner = i;
            }
        }

        /// An iterator that blocks on each message and ends at disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// A non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    /// Blocking iterator over received messages; see [`Receiver::iter`].
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Non-blocking iterator over queued messages; see [`Receiver::try_iter`].
    #[derive(Debug)]
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// Sending failed because the channel is disconnected; returns the message.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }
    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Receiving failed because the channel is empty and disconnected.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    /// Why a [`Receiver::try_recv`] returned no message.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        /// No message was ready.
        Empty,
        /// The channel is disconnected.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
            }
        }
    }
    impl std::error::Error for TryRecvError {}

    /// Why a [`Receiver::recv_timeout`] returned no message.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed first.
        Timeout,
        /// The channel is disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }
    impl std::error::Error for RecvTimeoutError {}
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_recv_does_not_starve_a_cloned_receiver() {
        // The regression this implementation exists to avoid: a receiver
        // parked in recv() must not hold the queue lock, so a clone can
        // still poll concurrently.
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let blocker = std::thread::spawn(move || rx.recv());
        // Give the blocker time to park inside recv().
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rx2.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx2.recv_timeout(Duration::from_millis(10)),
            Err(super::channel::RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(blocker.join().unwrap().unwrap(), 7);
    }

    #[test]
    fn two_consumers_split_the_stream() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        for i in 0..50 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = std::thread::spawn(move || rx.iter().count());
        let b = std::thread::spawn(move || rx2.iter().count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 50);
    }
}
