//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the subset this workspace uses:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   attribute and `name in strategy` argument bindings;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! * [`arbitrary::any`] for the integer primitives and `bool`;
//! * integer-range strategies (`0u8..3`), [`collection::vec`], and
//!   character-class regex strategies (`"[a-z]{0,40}"`);
//! * [`strategy::Strategy::prop_map`].
//!
//! Generation is deterministic per test (seeded from the test name, with a
//! `PROPTEST_SEED` env override) and there is **no shrinking**: a failing
//! case panics with the generated inputs so it can be replayed by hand.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case-count configuration and per-case outcome types.

    /// Configuration for a property block (case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` and should be retried.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    /// Outcome of a single generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG used to generate case inputs (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives the RNG for a named test, honouring `PROPTEST_SEED`.
        pub fn for_test(name: &str) -> TestRng {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x5EED_CAFE_F00D_D00D);
            let mut h = base;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = self.state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                ((self.next_u64() as u128 * bound as u128) >> 64) as u64
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree or shrinking; a strategy
    /// simply draws a value from the deterministic [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as i128 - s as i128) as u128 + 1;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (s as i128 + off) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Character-class regex strategies: a `&str` like `"[a-z0-9]{0,40}"`.
    ///
    /// Supported syntax is a sequence of atoms, each a literal character or
    /// a `[...]` class (with `a-z` ranges and a leading/trailing literal
    /// `-`), optionally followed by `{n}`, `{m,n}`, `?`, `*` (0–32) or `+`
    /// (1–32). Anything else panics at generation time.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<A> {
        _marker: PhantomData<fn() -> A>,
    }

    impl<A> std::fmt::Debug for AnyStrategy<A> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("AnyStrategy")
        }
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for "any value of type `A`".
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A size bound for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod string {
    //! Character-class regex generation backing the `&str` strategy.

    use crate::test_runner::TestRng;

    #[derive(Debug)]
    enum Atom {
        /// Candidate characters (expanded from a class or a literal).
        Class(Vec<char>),
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unterminated [ in pattern {pattern:?}"))
                        + i
                        + 1;
                    let body = &chars[i + 1..close];
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if body[j] == '\\' && j + 1 < body.len() {
                            set.push(body[j + 1]);
                            j += 2;
                        } else if j + 2 < body.len() && body[j + 1] == '-' {
                            let (lo, hi) = (body[j], body[j + 2]);
                            assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                            for c in lo..=hi {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(body[j]);
                            j += 1;
                        }
                    }
                    assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                    i = close + 1;
                    Atom::Class(set)
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling \\ in pattern {pattern:?}"));
                    i += 2;
                    Atom::Class(vec![c])
                }
                c if !"{}?*+]".contains(c) => {
                    i += 1;
                    Atom::Class(vec![c])
                }
                c => panic!("unsupported regex syntax {c:?} in pattern {pattern:?}"),
            };
            // Optional repetition suffix.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated {{ in pattern {pattern:?}"))
                    + i
                    + 1;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 32)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 32)
            } else {
                (1, 1)
            };
            atoms.push((atom, min, max));
        }
        atoms
    }

    /// Generates a string matching `pattern` (see the `&str` strategy docs
    /// for the supported subset).
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse(pattern) {
            let n = min + rng.below((max - min + 1) as u64) as usize;
            let Atom::Class(set) = &atom;
            for _ in 0..n {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod sample {
    //! Strategies drawing from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from the given non-empty list of values.
    pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select { values }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let rendered_args = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < 256 + config.cases * 16,
                                "{}: too many prop_assume! rejections", stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case #{}\n  inputs: {}\n  {}",
                                stringify!($name), case, rendered_args, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} == {} failed: left = {:?}, right = {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left = {:?}, right = {:?})",
            format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} != {} failed: both = {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (both = {:?})",
            format!($($fmt)+), l
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x), "x={x}");
            prop_assert!(y < 4, "y={y}");
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len={}", v.len());
        }

        #[test]
        fn regex_class_matches(s in "[a-c]{2,6}") {
            prop_assert!(s.len() >= 2 && s.len() <= 6);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "s={s:?}");
        }

        #[test]
        fn assume_retries(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_is_honoured(_x in any::<u64>()) {
            // Body intentionally trivial; the property is that the block
            // with an explicit config compiles and runs.
        }
    }

    #[test]
    fn prop_map_applies() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_test("prop_map_applies");
        let s = "[a-b]{1,3}".prop_map(|s| s.len());
        for _ in 0..50 {
            let n = s.generate(&mut rng);
            assert!((1..=3).contains(&n));
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        let gen_one = |name: &str| {
            let mut rng = crate::test_runner::TestRng::for_test(name);
            crate::collection::vec(any::<u8>(), 0..32).generate(&mut rng)
        };
        assert_eq!(gen_one("a"), gen_one("a"));
        assert_ne!(gen_one("a"), gen_one("b"));
    }
}
