//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.8 API subset).
//!
//! Provides [`RngCore`], [`SeedableRng`], the blanket [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), and [`rngs::StdRng`]. `StdRng`
//! here is xoshiro256++ rather than ChaCha12 — the workspace only requires
//! a deterministic, statistically solid generator, not bit-compatibility
//! with upstream `rand`.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations (never produced by [`rngs::StdRng`]).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator error")
    }
}
impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's native output.
///
/// Stand-in for `rand`'s `Standard` distribution, backing [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Widening multiply keeps the modulo bias below 2^-64,
                // irrelevant at the sample counts this workspace draws.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}
uint_range_impl!(u8, u16, u32, u64, usize);

macro_rules! int_range_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}
int_range_impl!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Error, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw generator state as seed bytes: feeding them back through
        /// [`SeedableRng::from_seed`] reconstructs an identical generator in
        /// O(1), however many values were drawn — the snapshot/restore path
        /// for long-lived deterministic streams. (A seeded xoshiro state is
        /// never all-zero, so `from_seed`'s zero-state guard cannot alias
        /// a real state.)
        pub fn state_bytes(&self) -> [u8; 32] {
            let mut out = [0u8; 32];
            for (chunk, w) in out.chunks_mut(8).zip(self.s) {
                chunk.copy_from_slice(&w.to_le_bytes());
            }
            out
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_bytes_roundtrip_continues_the_stream() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..12_345 {
            r.next_u64();
        }
        let mut restored = StdRng::from_seed(r.state_bytes());
        for _ in 0..100 {
            assert_eq!(r.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
